package pipeline

import (
	"fmt"
	"math"
	"sort"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/consensus"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
)

// Message payloads exchanged between actors.
type (
	msgLocal struct { // device -> bottom cluster leader
		round  int
		params tensor.Vector
		dev    int
	}
	msgPartial struct { // cluster leader -> parent leader / top
		round  int
		params tensor.Vector
		child  int // sender's cluster index at its level
	}
	msgFlag struct { // flag-level cluster -> descendants
		round   int // the round this flag model STARTS (paper's r+1)
		params  tensor.Vector
		relSize float64
	}
	msgGlobal struct { // top -> everyone
		round    int
		params   tensor.Vector
		formedAt simnet.Time
	}
)

// TraceRound implements trace.RoundCarrier so simulator traces stamp message
// events with their protocol round.
func (m msgLocal) TraceRound() int   { return m.round }
func (m msgPartial) TraceRound() int { return m.round }
func (m msgFlag) TraceRound() int    { return m.round }
func (m msgGlobal) TraceRound() int  { return m.round }

// engine wires the actors together and accumulates statistics.
type engine struct {
	cfg   Config
	tree  *topology.Tree
	sim   *simnet.Sim
	root  *rng.RNG
	sizes []int

	deviceLeader []simnet.NodeID // device id -> bottom cluster actor id
	clusterNode  [][]simnet.NodeID

	// Per-bottom-cluster timing observations, keyed by round.
	firstArrival  []map[int]simnet.Time
	flagArrival   []map[int]simnet.Time
	globalArrival []map[int]simnet.Time
	// Top observations.
	firstPartial map[int]simnet.Time
	globalReady  map[int]simnet.Time

	result    *Result
	evalModel *nn.Model
	evalPool  *nn.EvalPool
	workers   int
	// aggScratch is shared by every cluster- and top-level aggregation: the
	// simulation is single-threaded (discrete events run one at a time), so
	// one warm scratch serves all actors without contention. Destination
	// vectors stay fresh per aggregation because message envelopes retain
	// them.
	aggScratch *aggregate.Scratch
	// ins/fe are the run's telemetry handles and filter-audit emitter; both
	// are nil (and every call a no-op) when Config.Telemetry and OnFilter are
	// unset. The single-threaded event loop lets one emitter serve all actors.
	ins      *instruments
	fe       *filterEmitter
	quorumOf func(size int) int
	alpha    AlphaPolicy
	done     bool
}

func (e *engine) nodeOfCluster(l, i int) simnet.NodeID { return e.clusterNode[l][i] }

// trainDuration returns the virtual training time of device id for round r.
func (e *engine) trainDuration(id, round int) simnet.Time {
	t := e.cfg.Timing.TrainBase
	if j := e.cfg.Timing.TrainJitter; j > 0 {
		t *= 1 + j*e.root.Derive(fmt.Sprintf("tdur-%d-%d", id, round)).Float64()
	}
	return simnet.Time(t)
}

// aggDuration returns the virtual aggregation time of a cluster at level l
// for round r (the paper's τ'); the top level adds GlobalExtra.
func (e *engine) aggDuration(l, i, round int) simnet.Time {
	t := e.cfg.Timing.AggBase
	if j := e.cfg.Timing.AggJitter; j > 0 {
		t *= 1 + j*e.root.Derive(fmt.Sprintf("adur-%d-%d-%d", l, i, round)).Float64()
	}
	if l == 0 {
		t += e.cfg.Timing.GlobalExtra
	}
	return simnet.Time(t)
}

// deviceActor trains locally, uploads, and merges stale globals (Alg. 2).
type deviceActor struct {
	e           *engine
	id          int
	relSize     float64
	training    bool
	curRound    int
	stashedFlag *msgFlag
	pending     []msgGlobal
	model       *nn.Model
	ws          *nn.Workspace
}

func (d *deviceActor) OnMessage(ctx *simnet.Context, msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case msgFlag:
		if m.round >= d.e.cfg.Rounds {
			return
		}
		if d.training {
			if d.stashedFlag == nil || m.round > d.stashedFlag.round {
				mm := m
				d.stashedFlag = &mm
			}
			return
		}
		if m.round > d.curRound || (m.round == 0 && !d.training) {
			d.start(ctx, m.round, m.params, m.relSize)
		}
	case msgGlobal:
		// Stale global: merged into the in-progress local model at training
		// completion (Alg. 2 line 16-18).
		d.pending = append(d.pending, m)
	}
}

func (d *deviceActor) start(ctx *simnet.Context, round int, params tensor.Vector, relSize float64) {
	d.training = true
	d.curRound = round
	d.relSize = relSize
	startParams := params.Clone()
	dur := d.e.trainDuration(d.id, round)
	ctx.After(dur, func(ctx *simnet.Context) { d.finish(ctx, round, startParams) })
}

func (d *deviceActor) finish(ctx *simnet.Context, round int, startParams tensor.Vector) {
	e := d.e
	d.model.SetParams(startParams)
	r := e.root.Derive(fmt.Sprintf("sgd-%d-%d", d.id, round))
	nn.SGDWS(d.model, d.ws, e.cfg.ClientData[d.id], e.cfg.Local, r)
	// The update is sent as a message and retained by collectors, so it must
	// be a fresh vector (no buffer reuse here, unlike the round engine).
	out := d.model.Params()
	// Correction-factor merges for globals that arrived during training.
	for _, g := range d.pending {
		staleness := float64(ctx.Now() - g.formedAt)
		alpha := e.alpha.Alpha(staleness, d.relSize)
		tensor.Lerp(out, out, g.params, alpha)
		e.result.MergedGlobals++
		e.ins.mergedGlobal(staleness)
	}
	d.pending = d.pending[:0]
	d.training = false
	ctx.SendVolume(e.deviceLeader[d.id], msgLocal{round: round, params: out, dev: d.id}, int64(len(out)))
	if d.stashedFlag != nil {
		f := *d.stashedFlag
		d.stashedFlag = nil
		if f.round > round {
			d.start(ctx, f.round, f.params, f.relSize)
		}
	}
}

// clusterActor is the leader A_{l,i} of an intermediate (or bottom) cluster:
// collect a quorum, aggregate, forward upwards; at the flag level it also
// releases the flag model downwards (Alg. 3-5).
type clusterActor struct {
	e         *engine
	cluster   *topology.Cluster
	parent    simnet.NodeID
	children  []simnet.NodeID // child cluster actors, or member devices at the bottom
	collected map[int][]tensor.Vector
	// collectedIDs tracks, in lockstep with collected, each input's
	// contributor id (device id at the bottom, child-cluster leader id
	// above) so filter audits can name who was kept or discarded. Only
	// maintained when the engine has a filter emitter.
	collectedIDs map[int][]int
	closed       map[int]bool
	isBottom     bool
}

func (a *clusterActor) OnMessage(ctx *simnet.Context, msg simnet.Message) {
	e := a.e
	switch m := msg.Payload.(type) {
	case msgLocal:
		a.receive(ctx, m.round, m.params, m.dev)
	case msgPartial:
		a.receive(ctx, m.round, m.params, e.tree.Clusters[a.cluster.Level+1][m.child].Leader)
	case msgFlag:
		// Cascade the flag model downwards (Alg. 5).
		if a.isBottom {
			bi := a.cluster.Index
			if _, ok := e.flagArrival[bi][m.round]; !ok {
				e.flagArrival[bi][m.round] = ctx.Now()
			}
		}
		for _, ch := range a.children {
			ctx.SendVolume(ch, m, int64(len(m.params)))
		}
	case msgGlobal:
		if a.isBottom {
			bi := a.cluster.Index
			if _, ok := e.globalArrival[bi][m.round]; !ok {
				e.globalArrival[bi][m.round] = ctx.Now()
			}
		}
		for _, ch := range a.children {
			ctx.SendVolume(ch, m, int64(len(m.params)))
		}
	}
}

func (a *clusterActor) receive(ctx *simnet.Context, round int, params tensor.Vector, from int) {
	e := a.e
	if a.closed[round] || round >= e.cfg.Rounds {
		return
	}
	if a.isBottom {
		bi := a.cluster.Index
		if _, ok := e.firstArrival[bi][round]; !ok {
			e.firstArrival[bi][round] = ctx.Now()
		}
	}
	first := len(a.collected[round]) == 0
	a.collected[round] = append(a.collected[round], params)
	if e.fe != nil {
		a.collectedIDs[round] = append(a.collectedIDs[round], from)
	}
	if first && e.cfg.CollectTimeout > 0 {
		// Algorithm 4's "until M >= φ*C or Timeout": arm the semi-synchronous
		// deadline at the first arrival for this round.
		ctx.After(simnet.Time(e.cfg.CollectTimeout), func(ctx *simnet.Context) {
			if !a.closed[round] && len(a.collected[round]) > 0 {
				a.aggregateRound(ctx, round)
			}
		})
	}
	if len(a.collected[round]) < e.quorumOf(a.cluster.Size()) {
		return
	}
	a.aggregateRound(ctx, round)
}

// aggregateRound closes the round's collection and aggregates whatever
// arrived (quorum reached or timeout fired).
func (a *clusterActor) aggregateRound(ctx *simnet.Context, round int) {
	e := a.e
	a.closed[round] = true
	vecs := a.collected[round]
	ids := a.collectedIDs[round]
	delete(a.collected, round)
	delete(a.collectedIDs, round)
	dur := e.aggDuration(a.cluster.Level, a.cluster.Index, round)
	ctx.After(dur, func(ctx *simnet.Context) {
		agg := tensor.NewVector(len(vecs[0]))
		if err := e.cfg.PartialBRA.AggregateInto(agg, e.aggScratch, vecs); err != nil {
			// A malformed quorum at runtime: drop the round for this cluster.
			return
		}
		e.fe.emitAudit(a.cluster.Level, a.cluster.Index, round, ids)
		ctx.SendVolume(a.parent, msgPartial{round: round, params: agg, child: a.cluster.Index}, int64(len(agg)))
		if a.cluster.Level == e.cfg.FlagLevel {
			flag := msgFlag{round: round + 1, params: agg, relSize: a.relSize()}
			for _, ch := range a.children {
				ctx.SendVolume(ch, flag, int64(len(agg)))
			}
		}
	})
}

// relSize is the fraction of all devices under this cluster.
func (a *clusterActor) relSize() float64 {
	leaves := len(a.e.tree.LeafDescendants(a.cluster.Level, a.cluster.Index))
	return float64(leaves) / float64(a.e.tree.NumDevices())
}

// topActor forms the global model (Alg. 6) and disseminates it.
type topActor struct {
	e         *engine
	collected map[int][]tensor.Vector
	// collectedIDs tracks each partial's contributor (its level-1 cluster
	// leader id), in lockstep with collected; see clusterActor.collectedIDs.
	collectedIDs map[int][]int
	closed       map[int]bool
	children     []simnet.NodeID
	completed    int
}

func (t *topActor) OnMessage(ctx *simnet.Context, msg simnet.Message) {
	m, ok := msg.Payload.(msgPartial)
	if !ok {
		return
	}
	e := t.e
	if t.closed[m.round] || m.round >= e.cfg.Rounds {
		return
	}
	if _, seen := e.firstPartial[m.round]; !seen {
		e.firstPartial[m.round] = ctx.Now()
	}
	t.collected[m.round] = append(t.collected[m.round], m.params)
	if e.fe != nil {
		t.collectedIDs[m.round] = append(t.collectedIDs[m.round], e.tree.Clusters[1][m.child].Leader)
	}
	if len(t.collected[m.round]) < e.quorumOf(e.tree.Top().Size()) {
		return
	}
	t.closed[m.round] = true
	vecs := t.collected[m.round]
	ids := t.collectedIDs[m.round]
	delete(t.collected, m.round)
	delete(t.collectedIDs, m.round)
	round := m.round
	dur := e.aggDuration(0, 0, round)
	ctx.After(dur, func(ctx *simnet.Context) { t.formGlobal(ctx, round, vecs, ids) })
}

func (t *topActor) formGlobal(ctx *simnet.Context, round int, vecs []tensor.Vector, ids []int) {
	e := t.e
	var global tensor.Vector
	var err error
	if e.cfg.TopVoting != nil {
		cctx := &consensus.Context{
			Members:   len(vecs),
			Validator: e.shardValidator(),
			Rand:      e.root.Derive(fmt.Sprintf("vote-%d", round)),
			Workers:   e.workers,
		}
		var st consensus.Stats
		global, st, err = e.cfg.TopVoting.Agree(cctx, vecs)
		if err == nil {
			e.fe.emitConsensus(0, 0, round, ids, e.cfg.TopVoting.Name(), st)
		}
	} else {
		global = tensor.NewVector(len(vecs[0]))
		err = e.cfg.TopBRA.AggregateInto(global, e.aggScratch, vecs)
		if err == nil {
			e.fe.emitAudit(0, 0, round, ids)
		}
	}
	if err != nil {
		return
	}
	e.ins.globalFormed()
	e.globalReady[round] = ctx.Now()
	e.evaluate(round, ctx.Now(), global)
	gm := msgGlobal{round: round, params: global, formedAt: ctx.Now()}
	for _, ch := range t.children {
		ctx.SendVolume(ch, gm, int64(len(global)))
	}
	if e.cfg.FlagLevel == 0 {
		flag := msgFlag{round: round + 1, params: global, relSize: 1}
		for _, ch := range t.children {
			ctx.SendVolume(ch, flag, int64(len(global)))
		}
	}
	t.completed++
	if t.completed >= e.cfg.Rounds {
		e.done = true
		e.result.Duration = ctx.Now()
	}
}

func (e *engine) shardValidator() consensus.Validator {
	shards := e.cfg.ValidationShards
	pool := e.evalPool
	return func(member int, model tensor.Vector) float64 {
		s := pool.Get()
		defer pool.Put(s)
		s.Model.SetParams(model)
		return nn.AccuracyWS(s.Model, s.WS, shards[member%len(shards)])
	}
}

func (e *engine) evaluate(round int, now simnet.Time, global tensor.Vector) {
	every := e.cfg.EvalEvery
	if every <= 0 {
		every = 1
	}
	if (round+1)%every != 0 && round != e.cfg.Rounds-1 {
		return
	}
	e.evalModel.SetParams(global)
	acc := nn.AccuracyWorkers(e.evalModel, e.cfg.TestData, e.workers)
	e.ins.evalDone(acc)
	e.result.Curve = append(e.result.Curve, RoundAccuracy{Round: round + 1, Time: now, Accuracy: acc})
}

// Run executes the asynchronous pipeline workflow and returns accuracy and
// timing results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha == nil {
		cfg.Alpha = AdaptiveAlpha{}
	}
	if cfg.Latency == nil {
		cfg.Latency = simnet.Fixed(1)
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	root := rng.New(cfg.Seed)
	tree := cfg.Tree
	sim := simnet.New(cfg.Latency, root.Derive("net"))
	sim.Bandwidth = cfg.Bandwidth
	sizes := cfg.modelSizes()
	e := &engine{
		cfg:        cfg,
		tree:       tree,
		sim:        sim,
		root:       root,
		sizes:      sizes,
		result:     &Result{},
		alpha:      cfg.Alpha,
		evalModel:  nn.NewShaped(sizes...),
		evalPool:   nn.NewEvalPool(sizes...),
		workers:    cfg.Workers,
		aggScratch: aggregate.NewScratch(cfg.Workers),
	}
	e.ins = newInstruments(cfg.Telemetry, tree.Depth())
	e.fe = newFilterEmitter(e.ins, cfg.OnFilter)
	e.fe.attach(e.aggScratch)
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = 1
	}
	e.quorumOf = func(size int) int {
		n := int(math.Ceil(quorum * float64(size)))
		if n < 1 {
			n = 1
		}
		if n > size {
			n = size
		}
		return n
	}

	// --- Node id allocation.
	devices := tree.NumDevices()
	e.clusterNode = make([][]simnet.NodeID, tree.Depth())
	next := simnet.NodeID(devices)
	for l := range tree.Clusters {
		e.clusterNode[l] = make([]simnet.NodeID, len(tree.Clusters[l]))
		for i := range tree.Clusters[l] {
			e.clusterNode[l][i] = next
			next++
		}
	}
	e.deviceLeader = make([]simnet.NodeID, devices)
	bottom := tree.Bottom()
	for i, c := range tree.Clusters[bottom] {
		for _, m := range c.Members {
			e.deviceLeader[m] = e.clusterNode[bottom][i]
		}
	}
	nBottom := len(tree.Clusters[bottom])
	e.firstArrival = make([]map[int]simnet.Time, nBottom)
	e.flagArrival = make([]map[int]simnet.Time, nBottom)
	e.globalArrival = make([]map[int]simnet.Time, nBottom)
	for i := 0; i < nBottom; i++ {
		e.firstArrival[i] = map[int]simnet.Time{}
		e.flagArrival[i] = map[int]simnet.Time{}
		e.globalArrival[i] = map[int]simnet.Time{}
	}
	e.firstPartial = map[int]simnet.Time{}
	e.globalReady = map[int]simnet.Time{}

	// --- Register actors.
	init := nn.New(root.Derive("init"), e.sizes...).Params()
	devActors := make([]*deviceActor, devices)
	for id := 0; id < devices; id++ {
		m := nn.NewShaped(e.sizes...)
		devActors[id] = &deviceActor{e: e, id: id, curRound: -1, model: m, ws: nn.NewWorkspace(m)}
		if !cfg.Crashed[id] {
			// Crashed devices stay unregistered: the simulator drops their
			// traffic, exactly like a crash-stop node.
			sim.Register(simnet.NodeID(id), devActors[id])
		}
	}
	var topA *topActor
	for l := 0; l < tree.Depth(); l++ {
		for i, c := range tree.Clusters[l] {
			if l == 0 {
				topA = &topActor{e: e, collected: map[int][]tensor.Vector{}, collectedIDs: map[int][]int{}, closed: map[int]bool{}}
				for _, ch := range tree.ChildClusters(0, 0) {
					topA.children = append(topA.children, e.nodeOfCluster(1, ch.Index))
				}
				sim.Register(e.clusterNode[0][0], topA)
				continue
			}
			a := &clusterActor{
				e:            e,
				cluster:      c,
				collected:    map[int][]tensor.Vector{},
				collectedIDs: map[int][]int{},
				closed:       map[int]bool{},
				isBottom:     l == bottom,
			}
			if l == 1 {
				a.parent = e.clusterNode[0][0]
			} else {
				p := tree.Parent(l, i)
				a.parent = e.nodeOfCluster(p.Level, p.Index)
			}
			if l == bottom {
				for _, m := range c.Members {
					a.children = append(a.children, simnet.NodeID(m))
				}
			} else {
				for _, ch := range tree.ChildClusters(l, i) {
					a.children = append(a.children, e.nodeOfCluster(l+1, ch.Index))
				}
			}
			sim.Register(e.clusterNode[l][i], a)
		}
	}

	// --- Bootstrap: every live device receives the initial model as the
	// round-0 flag at t=0. Crashed devices never start (failure injection);
	// a quorum φ < 1 lets their clusters proceed without them.
	for id := 0; id < devices; id++ {
		if cfg.Crashed[id] {
			continue
		}
		id := id
		sim.ScheduleAt(0, simnet.NodeID(id), func(ctx *simnet.Context) {
			devActors[id].start(ctx, 0, init, 1)
		})
	}
	if _, err := sim.Run(0); err != nil {
		return nil, err
	}
	if !e.done {
		return nil, fmt.Errorf("pipeline: simulation drained after %d/%d rounds", topA.completed, cfg.Rounds)
	}
	e.result.Network = sim.Stats()
	e.computeTimings()
	if n := len(e.result.Curve); n > 0 {
		e.result.FinalAccuracy = e.result.Curve[n-1].Accuracy
	}
	return e.result, nil
}

// computeTimings derives the per-round σ_w, σ_p, σ_g, σ and ν series from
// the recorded observation points, averaged across bottom clusters.
func (e *engine) computeTimings() {
	nBottom := len(e.firstArrival)
	var nuSum float64
	var nuCount int
	for round := 0; round < e.cfg.Rounds-1; round++ {
		var sw, sp, sg, sigma float64
		count := 0
		ready, okReady := e.globalReady[round]
		first, okFirst := e.firstPartial[round]
		if !okReady || !okFirst {
			continue
		}
		sgTop := float64(ready - first)
		for b := 0; b < nBottom; b++ {
			fa, ok1 := e.firstArrival[b][round]
			fl, ok2 := e.flagArrival[b][round+1]
			ga, ok3 := e.globalArrival[b][round]
			if !ok1 || !ok2 || !ok3 {
				continue
			}
			total := float64(ga - fa)
			wait := float64(fl - fa)
			if total <= 0 {
				continue
			}
			if wait > total {
				wait = total
			}
			// The paper's decomposition σ = σ_w + σ_p + σ_g assumes disjoint
			// phases; across clusters the phases can overlap slightly (the
			// top may start collecting before the last flag lands), so the
			// measured top-side σ_g is clipped to the non-waiting residual.
			sgEff := math.Min(sgTop, total-wait)
			p := total - wait - sgEff
			sw += wait
			sp += p
			sg += sgEff
			sigma += total
			count++
		}
		if count == 0 {
			continue
		}
		t := RoundTiming{
			Round:  round,
			SigmaW: sw / float64(count),
			SigmaP: sp / float64(count),
			SigmaG: sg / float64(count),
			Sigma:  sigma / float64(count),
		}
		if t.Sigma > 0 {
			t.Nu = (t.SigmaP + t.SigmaG) / t.Sigma
		}
		e.result.Timings = append(e.result.Timings, t)
		e.ins.roundTiming(t)
		nuSum += t.Nu
		nuCount++
	}
	sort.Slice(e.result.Timings, func(i, j int) bool { return e.result.Timings[i].Round < e.result.Timings[j].Round })
	if nuCount > 0 {
		e.result.MeanNu = nuSum / float64(nuCount)
		e.ins.setMeanNu(e.result.MeanNu)
	}
}
