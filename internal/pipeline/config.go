// Package pipeline implements ABD-HFL's asynchronous pipeline learning
// workflow on top of the discrete-event simulator: devices and cluster
// leaders are actors exchanging models over simulated links; a configurable
// flag level ℓ_F releases partial models downwards so the next global round
// of local training starts while global aggregation is still in flight, and
// stale global models are merged into in-progress local models with the
// correction factor of Eq. (1). The engine measures, per round, the paper's
// waiting time σ_w, pipelined aggregation time σ_p, global aggregation time
// σ_g, and the efficiency indicator ν = (σ_p+σ_g)/σ of Eq. (3).
package pipeline

import (
	"errors"
	"fmt"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/fault"
	"abdhfl/internal/nn"
	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
	"abdhfl/internal/trace"
	"abdhfl/internal/topology"
)

// Timing models the virtual durations of compute phases. Link delays come
// from the simnet latency model; these are node-local costs.
type Timing struct {
	// TrainBase/TrainJitter: a device's local-training duration is
	// TrainBase * (1 + U[0, TrainJitter]) virtual ms.
	TrainBase, TrainJitter float64
	// AggBase/AggJitter: a cluster aggregation (the paper's τ').
	AggBase, AggJitter float64
	// GlobalExtra is added on top of AggBase for the top-level aggregation
	// (consensus protocols cost more than one BRA pass; the paper's τ'_g).
	GlobalExtra float64
}

// DefaultTiming mirrors a modest edge deployment: training dominates,
// aggregation is cheap, consensus at the top costs a few aggregations.
func DefaultTiming() Timing {
	return Timing{TrainBase: 100, TrainJitter: 0.5, AggBase: 10, AggJitter: 0.2, GlobalExtra: 40}
}

// AlphaPolicy selects the correction factor α applied when a stale global
// model is merged into an in-progress local model (Eq. 1).
type AlphaPolicy interface {
	// Alpha returns the correction factor in (0, 1]. staleness is the
	// virtual time between the global model's formation and its merge;
	// relSize is the fraction of all training data under the receiving
	// device's flag-level ancestor (the relative dataset size of θ_F).
	Alpha(staleness, relSize float64) float64
}

// FixedAlpha ignores context and always returns its value.
type FixedAlpha float64

// Alpha implements AlphaPolicy.
func (f FixedAlpha) Alpha(_, _ float64) float64 { return float64(f) }

// AdaptiveAlpha implements the paper's two qualitative rules: α shrinks with
// global-model staleness (outdated information is penalised) and shrinks as
// the flag model's relative dataset size grows (a representative flag model
// leaves the global model little to add).
type AdaptiveAlpha struct {
	// Base is the α at zero staleness and zero relative size; zero selects 0.9.
	Base float64
	// StalenessScale is the staleness (virtual ms) at which the staleness
	// discount halves α; zero selects 500.
	StalenessScale float64
	// Floor bounds α away from zero; zero selects 0.05.
	Floor float64
}

// Alpha implements AlphaPolicy.
func (a AdaptiveAlpha) Alpha(staleness, relSize float64) float64 {
	base := a.Base
	if base == 0 {
		base = 0.9
	}
	scale := a.StalenessScale
	if scale == 0 {
		scale = 500
	}
	floor := a.Floor
	if floor == 0 {
		floor = 0.05
	}
	if relSize < 0 {
		relSize = 0
	}
	if relSize > 1 {
		relSize = 1
	}
	alpha := base * (scale / (scale + staleness)) * (1 - relSize)
	if alpha < floor {
		alpha = floor
	}
	if alpha > 1 {
		alpha = 1
	}
	return alpha
}

// Config describes one asynchronous pipeline run.
type Config struct {
	Tree *topology.Tree
	// Rounds of global aggregation to complete.
	Rounds int
	// FlagLevel ℓ_F in [0, bottom-1]: the level whose partial models are
	// disseminated as flag models. 0 means the global model itself is the
	// flag (no pipelining of the top).
	FlagLevel int
	// Quorum φ: fraction of a cluster's inputs a leader waits for; zero
	// selects 1.
	Quorum float64
	// CollectTimeout is Algorithm 4's "or Timeout" branch (the
	// semi-synchronous regime of SHFL): a leader that has waited this many
	// virtual ms since its first arrival for a round aggregates whatever it
	// holds, even below the quorum. Zero disables timeouts (pure quorum).
	//
	// When Faults are enabled, leaders additionally arm the deadline as soon
	// as they learn a round exists (forwarding its flag model), so a leader
	// whose inputs are ALL lost still makes progress instead of waiting for
	// a first arrival that never comes.
	CollectTimeout float64
	// TimeoutBackoff multiplies the collect deadline on every empty expiry
	// (a deadline that fires with zero inputs re-arms rather than closing
	// the round). Zero selects 2; values below 1 are rejected.
	TimeoutBackoff float64
	// TimeoutRetries bounds how many times an empty deadline re-arms before
	// the leader abandons the round's collection (degraded operation: the
	// level above proceeds without this subtree). Zero selects 3.
	TimeoutRetries int

	// Faults, when non-nil and non-empty, injects the plan's failures into
	// the run: transport faults (drop/duplicate/reorder) at the simulator
	// layer, crash/churn/omission at the device layer, and leader failures
	// at the cluster layer. Leaders deduplicate contributions per round, so
	// duplicated messages can never double-fill a quorum. Same seed, same
	// plan -> bit-identical run.
	Faults *fault.Plan

	Local  nn.TrainConfig
	Hidden []int

	// PartialBRA aggregates intermediate clusters. TopCBA (any registered
	// consensus protocol, e.g. the randomized "aba") or TopVoting selects a
	// consensus at the top; otherwise TopBRA is used. TopCBA wins when both
	// consensus fields are set.
	PartialBRA aggregate.Aggregator
	TopBRA     aggregate.Aggregator
	TopVoting  *consensus.Voting
	TopCBA     consensus.Protocol

	ClientData       []*dataset.Dataset
	TestData         *dataset.Dataset
	ValidationShards []*dataset.Dataset

	Byzantine map[int]bool
	// Crashed devices never train or upload — failure injection for
	// Assumption 2: as long as every cluster retains a quorum (φ) of live
	// members, rounds still complete.
	Crashed map[int]bool

	Timing  Timing
	Latency simnet.LatencyModel
	// Bandwidth, if non-nil, models per-link capacity (volume units per
	// virtual ms); model transfers then add size/bandwidth to their delay —
	// the per-level bandwidth factor of Appendix E. Nil = infinite. (To charge
	// a byte rate plus per-message overhead, wrap Latency in simnet.Bandwidth
	// instead: with a Codec set, message volumes are wire bytes.)
	Bandwidth func(from, to simnet.NodeID) float64
	Alpha     AlphaPolicy

	// Codec, when non-nil, passes every model transfer through one
	// encode→decode hop at the sender that forms it (device upload, partial,
	// and the global/flag dissemination; pure forwards re-ship the same bytes
	// without a second hop) and charges wire bytes — instead of raw element
	// counts — as the message volume the latency/bandwidth models see. The
	// Delta codec's reference is the engine's last formed global model (the
	// round's start parameters for device uploads). Nil and codec.Identity
	// reproduce the uncompressed model stream bit-for-bit; only the volume
	// units change under Identity.
	Codec codec.Codec

	Seed uint64
	// EvalEvery rounds between accuracy evaluations; zero selects 1.
	EvalEvery int
	// Telemetry, when non-nil, receives the run's metrics: completed-round
	// counters, the σ_w/σ_p/σ_g/σ and ν distributions, stale-global
	// staleness and merge counts, accuracy, consensus vote tallies, and
	// per-level filter kept/clipped/discarded counts. Nil disables all
	// instrumentation.
	Telemetry *telemetry.Registry
	// OnFilter, if non-nil, receives every aggregation step's filtering
	// verdict (contributor ids kept/clipped/discarded per level, cluster,
	// and round). The id slices are reused between calls; consumers must
	// copy or reduce them before returning.
	OnFilter func(telemetry.FilterDecision)
	// Workers bounds the goroutines used for consensus validator scoring,
	// test-set evaluation, and the robust-aggregation kernels (the
	// simulation's event loop itself stays single-threaded and
	// deterministic); zero selects GOMAXPROCS. Results are bit-identical for
	// every value.
	Workers int
	// Trace, when non-nil, receives causal spans for every round: device
	// train spans, counted uplink/partial message hops, per-cluster
	// aggregations (with rule and kept/filtered counts), global formation,
	// and round envelopes — all on the virtual clock, byte-identical
	// across Workers and tracer shard counts. Nil disables emission
	// entirely (zero overhead).
	Trace *trace.Tracer
	// Flight, when non-nil, mirrors every delivered simulator message into
	// a bounded ring buffer; chaostest dumps its tail when an invariant
	// trips.
	Flight *trace.FlightRecorder
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Tree == nil {
		return errors.New("pipeline: Tree is nil")
	}
	if err := c.Tree.Validate(); err != nil {
		return err
	}
	if c.Rounds <= 0 {
		return errors.New("pipeline: Rounds must be positive")
	}
	if c.FlagLevel < 0 || c.FlagLevel > c.Tree.Bottom()-1 {
		return fmt.Errorf("pipeline: FlagLevel %d out of [0, %d]", c.FlagLevel, c.Tree.Bottom()-1)
	}
	if len(c.ClientData) != c.Tree.NumDevices() {
		return fmt.Errorf("pipeline: %d shards for %d devices", len(c.ClientData), c.Tree.NumDevices())
	}
	if c.TestData == nil || c.TestData.Len() == 0 {
		return errors.New("pipeline: TestData is empty")
	}
	if c.PartialBRA == nil {
		return errors.New("pipeline: PartialBRA is nil")
	}
	if c.TopVoting == nil && c.TopBRA == nil && c.TopCBA == nil {
		return errors.New("pipeline: set TopBRA, TopVoting, or TopCBA")
	}
	if c.TopVoting != nil || c.TopCBA != nil {
		if len(c.ValidationShards) == 0 {
			// The shard validator indexes member % len(ValidationShards); an
			// empty slice would be a mod-by-zero panic mid-simulation.
			return errors.New("pipeline: top consensus requires at least one ValidationShard")
		}
		for i, s := range c.ValidationShards {
			if s == nil || s.Len() == 0 {
				return fmt.Errorf("pipeline: ValidationShards[%d] is empty", i)
			}
		}
	}
	if c.Quorum < 0 || c.Quorum > 1 {
		return fmt.Errorf("pipeline: Quorum %v out of [0,1]", c.Quorum)
	}
	if c.TimeoutBackoff != 0 && c.TimeoutBackoff < 1 {
		return fmt.Errorf("pipeline: TimeoutBackoff %v below 1", c.TimeoutBackoff)
	}
	if c.TimeoutRetries < 0 {
		return fmt.Errorf("pipeline: TimeoutRetries %d negative", c.TimeoutRetries)
	}
	return nil
}

func (c *Config) modelSizes() []int {
	hidden := c.Hidden
	if len(hidden) == 0 {
		hidden = []int{32}
	}
	sizes := []int{dataset.Dim}
	sizes = append(sizes, hidden...)
	return append(sizes, dataset.NumClasses)
}

// RoundTiming holds the paper's per-round pipeline quantities for one global
// round, averaged over bottom clusters.
type RoundTiming struct {
	Round int
	// SigmaW is the waiting time between a cluster's first local upload and
	// the arrival of the next flag model.
	SigmaW float64
	// SigmaP is the partial-aggregation time hidden by pipelining (flag
	// level exclusive to level 1).
	SigmaP float64
	// SigmaG is the global collection+aggregation time.
	SigmaG float64
	// Sigma is the total first-upload-to-global-arrival time.
	Sigma float64
	// Nu is the efficiency indicator (σ_p+σ_g)/σ of Eq. (3).
	Nu float64
}

// RoundAccuracy is one accuracy measurement.
type RoundAccuracy struct {
	Round    int
	Time     simnet.Time
	Accuracy float64
}

// Result is the outcome of an asynchronous run.
type Result struct {
	FinalAccuracy float64
	Curve         []RoundAccuracy
	Timings       []RoundTiming
	// MeanNu is the average efficiency indicator across measured rounds.
	MeanNu float64
	// Duration is the virtual time at which the last completed global round
	// formed (or, for a faulted run that stalled, the drain time).
	Duration simnet.Time
	// Network reports total traffic, including fault-layer drop/duplicate
	// counts and deliveries lost to unregistered (crashed) nodes.
	Network simnet.Stats
	// MergedGlobals counts stale-global merges performed by devices
	// (correction-factor applications).
	MergedGlobals int
	// CompletedRounds is the number of global rounds actually formed. It
	// equals the configured Rounds on a fault-free run; under injected
	// faults the protocol may legitimately finish fewer (degraded rounds
	// abandoned at every level starve the top).
	CompletedRounds int
	// SubQuorum counts aggregations (any level, top included) that closed
	// below the quorum via the collect timeout — Algorithm 4's "or Timeout"
	// branch actually taken.
	SubQuorum int
	// Abandoned counts (cluster, round) collections given up after the
	// timeout-with-backoff retries expired with zero inputs.
	Abandoned int
	// Omitted counts uploads withheld by omission-Byzantine devices.
	Omitted int
	// WireBytes is the total encoded bytes shipped across all links (every
	// SendVolume charge, forwards included) when a Codec is configured; zero
	// without one.
	WireBytes int64
	// FinalParams is the last formed global model's parameter vector; nil
	// when no round completed. Exposed for cross-engine equivalence checks.
	FinalParams tensor.Vector
}
