package pipeline

import (
	"abdhfl/internal/aggregate"
	"abdhfl/internal/simnet"
	"abdhfl/internal/trace"
)

// Span emission for the pipeline engine. All emission runs on the
// single-threaded discrete-event dispatch loop, so spans record in program
// order and the tracer's auto-sequence numbers are deterministic — the
// exported stream is byte-identical across worker and shard counts.
//
// Parent links follow the consumer convention of internal/trace: a train
// span feeds its uplink msg span, an uplink feeds its cluster's aggregate
// span, an aggregate feeds the partial msg span it emits, partials feed the
// next aggregation up (the round's global span at the top), and the global
// span's parent is the round span. Every ID is a trace.SpanID hash of those
// structural coordinates, so both endpoints of a hop name the same span
// without coordination — including consumers that are recorded later, or
// never (a timed-out collection leaves its inputs' spans dangling, which is
// exactly what happened).

// wireOf returns the codec wire size of one model transfer without touching
// the per-hop accounting (volume() owns that).
func (e *engine) wireOf(dim int) int64 {
	if e.cfg.Codec == nil {
		return int64(dim)
	}
	return int64(e.cfg.Codec.WireBytes(dim))
}

// auditCounts reads the scratch audit's verdict for the aggregation that
// just ran: kept counts contributions that made it into the result
// (clipped ones still contribute), filtered counts discarded ones.
func (e *engine) auditCounts(n int) (kept, filtered int) {
	a := e.aggScratch.Audit
	if a == nil || len(a.Decisions) != n {
		return n, 0
	}
	for _, d := range a.Decisions {
		if d != aggregate.DecisionKept && d != aggregate.DecisionClipped {
			filtered++
		}
	}
	return n - filtered, filtered
}

// traceTrain emits a device's train span for the round it just finished.
func (e *engine) traceTrain(dev, round int, start, end simnet.Time) {
	if e.tr == nil {
		return
	}
	e.tr.Record(trace.Span{
		ID:      trace.SpanID("train", round, dev),
		Parent:  trace.SpanID("umsg", round, dev),
		Name:    "train",
		Start:   float64(start),
		End:     float64(end),
		Round:   round,
		Level:   e.tree.Bottom(),
		Cluster: e.deviceCluster[dev],
		Device:  dev,
		From:    -1,
		To:      -1,
	})
}

// traceUplink emits the device->leader hop span for a counted upload.
func (e *engine) traceUplink(dev, round, level, cluster int, sentAt, at simnet.Time, dim int) {
	if e.tr == nil {
		return
	}
	e.tr.Record(trace.Span{
		ID:      trace.SpanID("umsg", round, dev),
		Parent:  trace.SpanID("aggregate", round, level, cluster),
		Name:    "msg",
		Start:   float64(sentAt),
		End:     float64(at),
		Round:   round,
		Level:   level,
		Cluster: cluster,
		Device:  dev,
		From:    dev,
		To:      int(e.clusterNode[level][cluster]),
		Bytes:   e.wireOf(dim),
		Detail:  "uplink",
	})
}

// tracePartial emits the child-cluster->parent hop span for a counted
// partial model. child is the sender's cluster index at level childLevel;
// (level, cluster) identify the consuming aggregation — level -1 means the
// top (the round's global span).
func (e *engine) tracePartial(childLevel, child, round, level, cluster int, sentAt, at simnet.Time, dim int) {
	if e.tr == nil {
		return
	}
	parent := trace.SpanID("global", round)
	to := int(e.clusterNode[0][0])
	if level >= 0 {
		parent = trace.SpanID("aggregate", round, level, cluster)
		to = int(e.clusterNode[level][cluster])
	}
	e.tr.Record(trace.Span{
		ID:      trace.SpanID("pmsg", round, childLevel, child),
		Parent:  parent,
		Name:    "msg",
		Start:   float64(sentAt),
		End:     float64(at),
		Round:   round,
		Level:   childLevel,
		Cluster: child,
		Device:  -1,
		From:    int(e.clusterNode[childLevel][child]),
		To:      to,
		Bytes:   e.wireOf(dim),
		Detail:  "partial",
	})
}

// traceAggregate emits a cluster aggregation span: collection closed at
// closeAt, the aggregate formed (after τ') at end.
func (e *engine) traceAggregate(level, cluster, round, inputs int, closeAt, end simnet.Time, rule string) {
	if e.tr == nil {
		return
	}
	kept, filtered := e.auditCounts(inputs)
	e.tr.Record(trace.Span{
		ID:       trace.SpanID("aggregate", round, level, cluster),
		Parent:   trace.SpanID("pmsg", round, level, cluster),
		Name:     "aggregate",
		Start:    float64(closeAt),
		End:      float64(end),
		Round:    round,
		Level:    level,
		Cluster:  cluster,
		Device:   -1,
		From:     -1,
		To:       -1,
		Rule:     rule,
		Kept:     kept,
		Filtered: filtered,
	})
}

// traceGlobal emits the round's global-formation span plus the enclosing
// round span (first device start -> global formed).
func (e *engine) traceGlobal(round, kept, filtered int, end simnet.Time, rule string, dim int) {
	if e.tr == nil {
		return
	}
	start := e.firstPartial[round]
	e.tr.Record(trace.Span{
		ID:       trace.SpanID("global", round),
		Parent:   trace.SpanID("round", round),
		Name:     "global",
		Start:    float64(start),
		End:      float64(end),
		Round:    round,
		Level:    0,
		Cluster:  0,
		Device:   -1,
		From:     -1,
		To:       -1,
		Rule:     rule,
		Bytes:    e.wireOf(dim),
		Kept:     kept,
		Filtered: filtered,
	})
	rs, ok := e.roundStart[round]
	if !ok {
		rs = start
	}
	e.tr.Record(trace.Span{
		ID:      trace.SpanID("round", round),
		Name:    "round",
		Start:   float64(rs),
		End:     float64(end),
		Round:   round,
		Level:   -1,
		Cluster: -1,
		Device:  -1,
		From:    -1,
		To:      -1,
	})
}
