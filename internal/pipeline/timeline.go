package pipeline

import (
	"fmt"
	"strings"
)

// RenderTimeline draws the per-round phase breakdown as an ASCII Gantt chart
// — the textual counterpart of the paper's Fig 2. Each row shows one global
// round's σ window from the first local upload to the global model's
// arrival, split into the waiting phase σ_w ('.'), the pipelined partial
// aggregation σ_p ('='), and the global aggregation σ_g ('#'); during the
// '=' and '#' spans the devices are already training the next round.
// width is the number of characters allotted to the longest round.
func RenderTimeline(timings []RoundTiming, width int) string {
	if len(timings) == 0 {
		return "(no timing data)\n"
	}
	if width < 10 {
		width = 10
	}
	maxSigma := 0.0
	for _, t := range timings {
		if t.Sigma > maxSigma {
			maxSigma = t.Sigma
		}
	}
	if maxSigma == 0 {
		return "(zero-length rounds)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "σ_w '.' (waiting)   σ_p '=' (partial agg, pipelined)   σ_g '#' (global agg, pipelined)\n\n")
	for _, t := range timings {
		scale := float64(width) / maxSigma
		w := int(t.SigmaW*scale + 0.5)
		p := int(t.SigmaP*scale + 0.5)
		g := int(t.SigmaG*scale + 0.5)
		if w+p+g == 0 {
			w = 1
		}
		fmt.Fprintf(&b, "round %3d  |%s%s%s|  σ=%.0f ν=%.2f\n",
			t.Round,
			strings.Repeat(".", w),
			strings.Repeat("=", p),
			strings.Repeat("#", g),
			t.Sigma, t.Nu)
	}
	return b.String()
}
