package pipeline

import (
	"strings"
	"testing"

	"abdhfl/internal/trace"
)

// TestPipelineSpanStreamGolden pins the tentpole promise on the asynchronous
// engine: the exported span stream is byte-identical for every (Workers,
// tracer shards) combination, because spans carry explicit sequence numbers
// assigned on the deterministic event loop.
func TestPipelineSpanStreamGolden(t *testing.T) {
	var want string
	for _, cell := range []struct{ workers, shards int }{
		{1, 1}, {4, 8}, {7, 32},
	} {
		cfg := buildConfig(t, 3, 2, 2, 4, 1, 2)
		cfg.Workers = cell.workers
		tr := trace.NewTracer(cell.shards, 0)
		cfg.Trace = tr
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 {
			t.Fatal("traced pipeline run recorded no spans")
		}
		var j, c strings.Builder
		if err := tr.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteChromeTrace(&c); err != nil {
			t.Fatal(err)
		}
		got := j.String() + "\x00" + c.String()
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d shards=%d produced a different span stream",
				cell.workers, cell.shards)
		}
	}
	for _, name := range []string{`"name":"round"`, `"name":"train"`, `"name":"msg"`, `"name":"aggregate"`, `"name":"global"`} {
		if !strings.Contains(want, name) {
			t.Fatalf("pipeline stream missing %s", name)
		}
	}
}

// TestPipelineCriticalPaths walks a real traced run's span DAG and checks
// the analysis invariants: one path per formed global, a positive total that
// equals the sum of its phase buckets, and a straggler device on every path.
func TestPipelineCriticalPaths(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
	tr := trace.NewTracer(8, 0)
	cfg.Trace = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := trace.CriticalPaths(tr.Spans())
	if len(paths) == 0 {
		t.Fatal("no critical paths from a traced run")
	}
	if len(paths) > res.CompletedRounds {
		t.Fatalf("%d paths for %d completed rounds", len(paths), res.CompletedRounds)
	}
	for _, p := range paths {
		if p.Total <= 0 {
			t.Fatalf("round %d: non-positive total %v", p.Round, p.Total)
		}
		const eps = 1e-9
		sum := p.TrainMS + p.LinkMS + p.AggregateMS + p.GlobalMS
		if diff := sum - p.Total; diff > eps || diff < -eps {
			t.Fatalf("round %d: breakdown %v != total %v", p.Round, sum, p.Total)
		}
		if p.TrainMS <= 0 {
			t.Fatalf("round %d: no training on the critical path", p.Round)
		}
		if p.Straggler < 0 {
			t.Fatalf("round %d: no straggler device", p.Round)
		}
		if len(p.Steps) < 3 {
			t.Fatalf("round %d: path only %d steps", p.Round, len(p.Steps))
		}
	}
	var b strings.Builder
	trace.RenderPaths(&b, paths)
	if !strings.Contains(b.String(), "slowest_link") {
		t.Fatalf("render missing header:\n%s", b.String())
	}
}
