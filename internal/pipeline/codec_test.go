package pipeline

import (
	"testing"

	"abdhfl/internal/codec"
	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
)

// samePipelineResult checks everything a codec hop could perturb: the
// accuracy curve, timings, final parameters, and the event schedule
// (Duration). Network volume is excluded — the codec changes volume units
// from elements to bytes by design.
func samePipelineResult(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if a.Duration != b.Duration {
		t.Fatalf("%s: durations differ: %v vs %v", tag, a.Duration, b.Duration)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths differ", tag)
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("%s: curve diverges at %d: %+v vs %+v", tag, i, a.Curve[i], b.Curve[i])
		}
	}
	if len(a.Timings) != len(b.Timings) {
		t.Fatalf("%s: timing lengths differ", tag)
	}
	for i := range a.Timings {
		if a.Timings[i] != b.Timings[i] {
			t.Fatalf("%s: timings diverge at %d", tag, i)
		}
	}
	if len(a.FinalParams) != len(b.FinalParams) {
		t.Fatalf("%s: param lengths differ", tag)
	}
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatalf("%s: final params diverge at coordinate %d", tag, i)
		}
	}
}

// TestIdentityCodecGoldenPipeline: the bit-exact Identity codec must
// reproduce a nil-codec pipeline run exactly — model stream, schedule, and
// timings — with both flag-level settings.
func TestIdentityCodecGoldenPipeline(t *testing.T) {
	for _, flagLevel := range []int{0, 1} {
		run := func(c codec.Codec) *Result {
			cfg := buildConfig(t, 3, 2, 2, 5, flagLevel, 1)
			cfg.EvalEvery = 1
			cfg.Codec = c
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		base, ident := run(nil), run(codec.Identity{})
		samePipelineResult(t, "pipeline", base, ident)
		if base.WireBytes != 0 {
			t.Fatal("nil codec must not account wire bytes")
		}
		if ident.WireBytes == 0 {
			t.Fatal("identity codec must account wire bytes")
		}
	}
}

// TestPipelineCodecDeterministic: lossy codecs stay bit-reproducible — the
// whole point of the deterministic transcode hop.
func TestPipelineCodecDeterministic(t *testing.T) {
	for _, name := range []string{"int8", "delta"} {
		c, err := codec.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() *Result {
			cfg := buildConfig(t, 3, 2, 2, 4, 1, 0)
			cfg.EvalEvery = 1
			cfg.Codec = c
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		samePipelineResult(t, name, a, b)
		if a.WireBytes != b.WireBytes {
			t.Fatalf("%s: wire bytes differ across reruns", name)
		}
	}
}

// TestPipelineCodecWithBandwidth: the simnet.Bandwidth wrapper charges wire
// bytes, so a compressed run must finish no later than an identity run under
// the same byte rate, and the run must stay deterministic.
func TestPipelineCodecWithBandwidth(t *testing.T) {
	run := func(c codec.Codec) *Result {
		cfg := buildConfig(t, 3, 2, 2, 4, 1, 0)
		cfg.EvalEvery = 1
		cfg.Codec = c
		cfg.Latency = simnet.Bandwidth{Base: simnet.Fixed(1), Rate: 50_000, PerMessage: 0.5}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ident, int8run := run(codec.Identity{}), run(codec.Int8Quant{})
	if int8run.Duration >= ident.Duration {
		t.Fatalf("int8 run (%v) not faster than identity (%v) under a byte-rate cap",
			int8run.Duration, ident.Duration)
	}
	if int8run.WireBytes >= ident.WireBytes {
		t.Fatalf("int8 wire bytes %d not below identity %d", int8run.WireBytes, ident.WireBytes)
	}
}

// TestPipelineCodecTelemetry: per-hop wire-byte counters cover the full
// total, and the ratio gauge reflects the configured codec.
func TestPipelineCodecTelemetry(t *testing.T) {
	reg := telemetry.New()
	cfg := buildConfig(t, 3, 2, 2, 3, 1, 0)
	cfg.Codec = codec.Int8Quant{}
	cfg.Telemetry = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var sum int64
	for _, hop := range hopNames {
		n := snap.Counters[`abdhfl_codec_wire_bytes_total{engine="pipeline",hop="`+hop+`"}`]
		if n == 0 {
			t.Fatalf("hop %q recorded zero bytes", hop)
		}
		sum += n
	}
	if sum != res.WireBytes {
		t.Fatalf("per-hop sum %d != total %d", sum, res.WireBytes)
	}
	if r := snap.Gauges[`abdhfl_codec_compression_ratio{engine="pipeline"}`]; r < 7 || r > 8.1 {
		t.Fatalf("compression ratio gauge = %v, want ~7.9", r)
	}
}
