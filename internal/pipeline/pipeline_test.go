package pipeline

import (
	"math"
	"strings"
	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/simnet"
	"abdhfl/internal/topology"
)

func buildConfig(t testing.TB, levels, m, top, rounds, flagLevel, byz int) Config {
	t.Helper()
	tree, err := topology.NewECSM(levels, m, top)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	devices := tree.NumDevices()
	full := dataset.Generate(r.Derive("train"), devices*60, dataset.DefaultGen())
	shards := dataset.PartitionIID(r.Derive("part"), full, devices)
	test := dataset.Generate(r.Derive("test"), 400, dataset.DefaultGen())
	valPool := dataset.Generate(r.Derive("val"), 300, dataset.DefaultGen())
	valShards := dataset.PartitionIID(r.Derive("valpart"), valPool, top)
	byzMap := map[int]bool{}
	for id := 0; id < byz; id++ {
		byzMap[id] = true
		attack.LabelFlipAll{Target: 9}.Poison(r.Derive("poison"), shards[id])
	}
	voting := consensus.Voting{}
	return Config{
		Tree:             tree,
		Rounds:           rounds,
		FlagLevel:        flagLevel,
		Local:            nn.TrainConfig{LearningRate: 0.1, BatchSize: 16, Iterations: 5},
		PartialBRA:       aggregate.NewMultiKrum(0.25),
		TopVoting:        &voting,
		ClientData:       shards,
		TestData:         test,
		ValidationShards: valShards,
		Byzantine:        byzMap,
		Seed:             3,
		EvalEvery:        rounds,
	}
}

func TestPipelineRunsAndLearns(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 25, 1, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("pipeline accuracy = %v, want > 0.5", res.FinalAccuracy)
	}
	if res.Duration <= 0 {
		t.Fatal("no duration recorded")
	}
	if res.Network.Messages == 0 {
		t.Fatal("no network traffic recorded")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
		cfg.EvalEvery = 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration {
		t.Fatalf("durations differ: %v vs %v", a.Duration, b.Duration)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatal("curve lengths differ")
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve diverged at %d", i)
		}
	}
}

func TestPipelineTimingsRecorded(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 8, 1, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) == 0 {
		t.Fatal("no timings recorded")
	}
	for _, tm := range res.Timings {
		if tm.Sigma <= 0 {
			t.Fatalf("round %d sigma = %v", tm.Round, tm.Sigma)
		}
		if tm.Nu < 0 || tm.Nu > 1 {
			t.Fatalf("round %d nu = %v out of [0,1]", tm.Round, tm.Nu)
		}
		if got := tm.SigmaW + tm.SigmaP + tm.SigmaG; math.Abs(got-tm.Sigma) > 1e-6 {
			t.Fatalf("round %d decomposition %v != sigma %v", tm.Round, got, tm.Sigma)
		}
	}
	if res.MeanNu <= 0 {
		t.Fatalf("mean nu = %v, want positive with flag level 1", res.MeanNu)
	}
}

func TestFlagLevelZeroHasNoPipelineGain(t *testing.T) {
	// With ℓF = 0 the flag model IS the global model: devices wait for the
	// whole aggregation, so ν must be ~0.
	cfg := buildConfig(t, 3, 2, 2, 8, 0, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanNu > 0.05 {
		t.Fatalf("flag level 0 mean nu = %v, want ~0", res.MeanNu)
	}
}

func TestDeeperFlagLevelIncreasesEfficiency(t *testing.T) {
	// Eq. (3)'s trade-off: moving the flag level away from the top (deeper)
	// reduces waiting and increases ν.
	nu := make([]float64, 2)
	for i, fl := range []int{0, 1} {
		cfg := buildConfig(t, 3, 2, 2, 10, fl, 0)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nu[i] = res.MeanNu
	}
	if nu[1] <= nu[0] {
		t.Fatalf("nu(flag=1)=%v not above nu(flag=0)=%v", nu[1], nu[0])
	}
}

func TestPipelineMergesStaleGlobals(t *testing.T) {
	// With flag level 1, devices begin round r+1 before global r arrives, so
	// correction-factor merges must occur.
	cfg := buildConfig(t, 3, 2, 2, 8, 1, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MergedGlobals == 0 {
		t.Fatal("no correction-factor merges with flag level 1")
	}
}

func TestPipelineUnderPoisoning(t *testing.T) {
	// Paper-shape tree at 25% label-flip poisoning: the pipeline must keep
	// learning.
	cfg := buildConfig(t, 3, 4, 4, 25, 1, 16)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.45 {
		t.Fatalf("pipeline accuracy under poisoning = %v", res.FinalAccuracy)
	}
}

func TestPipelineQuorumSpeedsRounds(t *testing.T) {
	// φ < 1 lets leaders skip stragglers: virtual duration must shrink.
	full := buildConfig(t, 3, 4, 4, 6, 1, 0)
	full.Timing = DefaultTiming()
	full.Timing.TrainJitter = 2 // strong stragglers
	fast := full
	fast.Quorum = 0.5
	resFull, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if resFast.Duration >= resFull.Duration {
		t.Fatalf("quorum 0.5 duration %v not below full %v", resFast.Duration, resFull.Duration)
	}
}

func TestPipelineTopBRA(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
	cfg.TopVoting = nil
	cfg.TopBRA = aggregate.Median{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve")
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)

	bad := cfg
	bad.FlagLevel = 2 // == bottom, out of the paper's {0..L-1}
	if _, err := Run(bad); err == nil {
		t.Fatal("bottom flag level accepted")
	}

	bad = cfg
	bad.Rounds = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero rounds accepted")
	}

	bad = cfg
	bad.PartialBRA = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil partial BRA accepted")
	}

	bad = cfg
	bad.TopVoting = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("no top rule accepted")
	}

	bad = cfg
	bad.ValidationShards = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("voting without shards accepted")
	}
}

func TestAdaptiveAlphaRules(t *testing.T) {
	a := AdaptiveAlpha{}
	// Staleness discount: fresher globals get larger α.
	if a.Alpha(0, 0) <= a.Alpha(1000, 0) {
		t.Fatal("α not decreasing in staleness")
	}
	// Relative-size discount: more representative flag models get smaller α.
	if a.Alpha(0, 0.1) <= a.Alpha(0, 0.9) {
		t.Fatal("α not decreasing in relative size")
	}
	// Bounds.
	for _, s := range []float64{0, 100, 1e6} {
		for _, rel := range []float64{-1, 0, 0.5, 1, 2} {
			v := a.Alpha(s, rel)
			if v <= 0 || v > 1 {
				t.Fatalf("α(%v, %v) = %v out of (0,1]", s, rel, v)
			}
		}
	}
}

func TestFixedAlpha(t *testing.T) {
	if FixedAlpha(0.3).Alpha(123, 0.5) != 0.3 {
		t.Fatal("FixedAlpha not constant")
	}
}

func TestPipelineWithLatencyModels(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 4, 1, 0)
	cfg.Latency = simnet.LogNormal{Base: 5, Sigma: 0.7}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Latency = simnet.Uniform{Min: 1, Max: 20}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPipeline8Devices(b *testing.B) {
	cfg := buildConfig(b, 3, 2, 2, 5, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPipelineCrashedDevicesWithQuorum(t *testing.T) {
	// One crashed device per bottom cluster; φ=0.75 lets the remaining three
	// members carry the round (Assumption 2 under failure injection).
	cfg := buildConfig(t, 3, 4, 4, 6, 1, 0)
	cfg.Quorum = 0.75
	cfg.Crashed = map[int]bool{}
	for i := 0; i < 64; i += 4 {
		cfg.Crashed[i+3] = true // last member of each cluster
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 || res.FinalAccuracy <= 0.1 {
		t.Fatalf("crashed-device run failed: %+v", res.FinalAccuracy)
	}
}

func TestPipelineCrashedDevicesWithoutQuorumStalls(t *testing.T) {
	// With φ=1 a single crashed member starves its cluster: the simulation
	// must drain before completing all rounds and report an error.
	cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
	cfg.Crashed = map[int]bool{0: true}
	if _, err := Run(cfg); err == nil {
		t.Fatal("stalled run reported success")
	}
}

func TestRenderTimeline(t *testing.T) {
	timings := []RoundTiming{
		{Round: 0, SigmaW: 50, SigmaP: 10, SigmaG: 40, Sigma: 100, Nu: 0.5},
		{Round: 1, SigmaW: 80, SigmaP: 0, SigmaG: 20, Sigma: 100, Nu: 0.2},
	}
	out := RenderTimeline(timings, 40)
	if !strings.Contains(out, "round   0") || !strings.Contains(out, "ν=0.50") {
		t.Fatalf("timeline missing rows: %q", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Fatalf("timeline missing phase glyphs: %q", out)
	}
	if RenderTimeline(nil, 40) != "(no timing data)\n" {
		t.Fatal("empty timeline not handled")
	}
}

func TestPipelineBandwidthSlowsGlobalPhase(t *testing.T) {
	// Choke the links into the top actor: σ_g (collection at the top) must
	// grow relative to an unconstrained run.
	base := buildConfig(t, 3, 2, 2, 8, 1, 0)
	fast, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	choked := base
	topNode := simnet.NodeID(base.Tree.NumDevices()) // first allocated cluster id = top actor
	choked.Bandwidth = func(_, to simnet.NodeID) float64 {
		if to == topNode {
			return 50 // ~48ms extra per 2410-param model
		}
		return 0
	}
	slow, err := Run(choked)
	if err != nil {
		t.Fatal(err)
	}
	meanSg := func(r *Result) float64 {
		s := 0.0
		for _, tm := range r.Timings {
			s += tm.SigmaG
		}
		return s / float64(len(r.Timings))
	}
	if meanSg(slow) <= meanSg(fast) {
		t.Fatalf("choked top σ_g %v not above unconstrained %v", meanSg(slow), meanSg(fast))
	}
}

func TestCollectTimeoutCarriesCrashedClusters(t *testing.T) {
	// With a crashed member and φ=1, a pure-quorum run stalls — but the
	// Algorithm 4 timeout lets leaders aggregate what they have.
	cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
	cfg.Crashed = map[int]bool{0: true}
	cfg.CollectTimeout = 400
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no rounds completed with timeout")
	}
}

func TestCollectTimeoutSpeedsStragglerRounds(t *testing.T) {
	base := buildConfig(t, 3, 4, 4, 6, 1, 0)
	base.Timing = DefaultTiming()
	base.Timing.TrainJitter = 3 // severe stragglers
	slow, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	timed := base
	timed.CollectTimeout = 150 // cut off the long tail
	fast, err := Run(timed)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration >= slow.Duration {
		t.Fatalf("timeout duration %v not below pure-quorum %v", fast.Duration, slow.Duration)
	}
}
