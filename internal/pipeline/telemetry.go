package pipeline

import (
	"fmt"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/simnet"
	"abdhfl/internal/telemetry"
)

// Indices of the per-round σ histograms (virtual-ms durations of Eq. 3).
const (
	sigmaWait = iota
	sigmaPartial
	sigmaGlobal
	sigmaTotal
	numSigmas
)

var sigmaNames = [numSigmas]string{"wait", "partial", "global", "total"}

// instruments bundles the pipeline run's telemetry handles, resolved once at
// startup. Unlike the round engines, durations here are virtual milliseconds
// (simulator time), so the histograms use a dedicated metric family instead of
// abdhfl_phase_seconds. A nil *instruments disables every recording; all
// methods are nil-receiver-safe.
type instruments struct {
	rounds    *telemetry.Counter
	merges    *telemetry.Counter
	staleness *telemetry.Histogram
	sigma     [numSigmas]*telemetry.Histogram
	nu        *telemetry.Histogram
	meanNu    *telemetry.Gauge
	accuracy  *telemetry.Gauge
	excluded  *telemetry.Counter
	votes     *telemetry.Histogram
	// Fault-injection and degraded-operation counters.
	subquorum *telemetry.Counter
	abandon   *telemetry.Counter
	omit      *telemetry.Counter
	dropped   *telemetry.Counter
	droppedUn *telemetry.Counter
	dup       *telemetry.Counter
	// Codec accounting: encoded bytes shipped per hop kind, and the
	// configured codec's compression ratio at the run's model dimension.
	wireHops [numHops]*telemetry.Counter
	ratio    *telemetry.Gauge
	// kept/clipped/trimmed are indexed by tree level (0 = top).
	kept    []*telemetry.Counter
	clipped []*telemetry.Counter
	trimmed []*telemetry.Counter
}

func newInstruments(reg *telemetry.Registry, levels int) *instruments {
	if reg == nil {
		return nil
	}
	vms := telemetry.ExpBuckets(1, 2, 16) // 1 .. 32768 virtual ms
	ins := &instruments{
		rounds:    reg.Counter(`abdhfl_rounds_total{engine="pipeline"}`),
		merges:    reg.Counter("abdhfl_pipeline_merged_globals_total"),
		staleness: reg.Histogram("abdhfl_pipeline_staleness_vms", vms),
		nu:        reg.Histogram("abdhfl_pipeline_nu", telemetry.LinearBuckets(0, 0.05, 21)),
		meanNu:    reg.Gauge("abdhfl_pipeline_mean_nu"),
		accuracy:  reg.Gauge(`abdhfl_accuracy{engine="pipeline"}`),
		excluded:  reg.Counter(`abdhfl_consensus_excluded_total{engine="pipeline"}`),
		votes:     reg.Histogram(`abdhfl_consensus_votes{engine="pipeline"}`, telemetry.LinearBuckets(0, 1, 17)),
		subquorum: reg.Counter(`abdhfl_subquorum_aggregations_total{engine="pipeline"}`),
		abandon:   reg.Counter(`abdhfl_abandoned_collections_total{engine="pipeline"}`),
		omit:      reg.Counter(`abdhfl_omitted_uploads_total{engine="pipeline"}`),
		dropped:   reg.Counter(`abdhfl_simnet_dropped_total{reason="fault"}`),
		droppedUn: reg.Counter(`abdhfl_simnet_dropped_total{reason="unregistered"}`),
		dup:       reg.Counter("abdhfl_simnet_duplicated_total"),
	}
	ins.ratio = reg.Gauge(`abdhfl_codec_compression_ratio{engine="pipeline"}`)
	for h := 0; h < numHops; h++ {
		ins.wireHops[h] = reg.Counter(fmt.Sprintf(`abdhfl_codec_wire_bytes_total{engine="pipeline",hop=%q}`, hopNames[h]))
	}
	for p := 0; p < numSigmas; p++ {
		ins.sigma[p] = reg.Histogram(fmt.Sprintf(`abdhfl_pipeline_sigma_vms{phase=%q}`, sigmaNames[p]), vms)
	}
	for lvl := 0; lvl < levels; lvl++ {
		suffix := fmt.Sprintf(`{engine="pipeline",level="%d"}`, lvl)
		ins.kept = append(ins.kept, reg.Counter("abdhfl_filter_kept_total"+suffix))
		ins.clipped = append(ins.clipped, reg.Counter("abdhfl_filter_clipped_total"+suffix))
		ins.trimmed = append(ins.trimmed, reg.Counter("abdhfl_filter_discarded_total"+suffix))
	}
	return ins
}

// mergedGlobal records one stale-global merge and its staleness (Eq. 1's
// correction-factor application).
func (ins *instruments) mergedGlobal(staleness float64) {
	if ins != nil {
		ins.merges.Inc()
		ins.staleness.Observe(staleness)
	}
}

// globalFormed records one completed global round.
func (ins *instruments) globalFormed() {
	if ins != nil {
		ins.rounds.Inc()
	}
}

func (ins *instruments) evalDone(acc float64) {
	if ins != nil {
		ins.accuracy.Set(acc)
	}
}

// roundTiming feeds one derived RoundTiming into the σ and ν histograms.
func (ins *instruments) roundTiming(t RoundTiming) {
	if ins == nil {
		return
	}
	ins.sigma[sigmaWait].Observe(t.SigmaW)
	ins.sigma[sigmaPartial].Observe(t.SigmaP)
	ins.sigma[sigmaGlobal].Observe(t.SigmaG)
	ins.sigma[sigmaTotal].Observe(t.Sigma)
	ins.nu.Observe(t.Nu)
}

// subQuorum records one aggregation closed below quorum by a timeout.
func (ins *instruments) subQuorum() {
	if ins != nil {
		ins.subquorum.Inc()
	}
}

// abandoned records one collection given up with zero inputs after the
// timeout-with-backoff retries expired.
func (ins *instruments) abandoned() {
	if ins != nil {
		ins.abandon.Inc()
	}
}

// omitted records one withheld upload from an omission-Byzantine device.
func (ins *instruments) omitted() {
	if ins != nil {
		ins.omit.Inc()
	}
}

// wireHop records one model transfer's encoded bytes on the given hop kind.
func (ins *instruments) wireHop(hop int, n int64) {
	if ins != nil {
		ins.wireHops[hop].Add(n)
	}
}

// codecInfo publishes the configured codec's compression ratio (raw float64
// bytes over wire bytes at the run's model dimension); a nil codec leaves
// the gauge at zero.
func (ins *instruments) codecInfo(c codec.Codec, dim int) {
	if ins == nil || c == nil || dim == 0 {
		return
	}
	ins.ratio.Set(float64(8*dim) / float64(c.WireBytes(dim)))
}

// network publishes the simulator's end-of-run fault and loss counters.
func (ins *instruments) network(st simnet.Stats) {
	if ins == nil {
		return
	}
	ins.dropped.Add(int64(st.Dropped))
	ins.droppedUn.Add(int64(st.DroppedUnregistered))
	ins.dup.Add(int64(st.Duplicated))
}

func (ins *instruments) setMeanNu(nu float64) {
	if ins != nil {
		ins.meanNu.Set(nu)
	}
}

func (ins *instruments) filterCounts(level, kept, clipped, trimmed int) {
	if ins == nil || level >= len(ins.kept) {
		return
	}
	ins.kept[level].Add(int64(kept))
	ins.clipped[level].Add(int64(clipped))
	ins.trimmed[level].Add(int64(trimmed))
}

func (ins *instruments) consensusStats(st consensus.Stats) {
	if ins == nil {
		return
	}
	ins.excluded.Add(int64(len(st.Excluded)))
	for _, v := range st.Votes {
		ins.votes.Observe(float64(v))
	}
}

// filterEmitter mirrors the round engines' emitter: it owns the FilterAudit
// attached to the engine's shared Scratch (the event loop is single-threaded,
// so one audit serves every actor) plus the reused id slices handed to the
// OnFilter callback. A nil *filterEmitter (telemetry and OnFilter both unset)
// keeps the Scratch's Audit nil so the rules skip recording entirely.
type filterEmitter struct {
	ins      *instruments
	onFilter func(telemetry.FilterDecision)
	audit    aggregate.FilterAudit
	kept     []int
	clipped  []int
	disc     []int
}

func newFilterEmitter(ins *instruments, onFilter func(telemetry.FilterDecision)) *filterEmitter {
	if ins == nil && onFilter == nil {
		return nil
	}
	return &filterEmitter{ins: ins, onFilter: onFilter}
}

func (f *filterEmitter) attach(s *aggregate.Scratch) {
	if f != nil {
		s.Audit = &f.audit
	}
}

func (f *filterEmitter) publish(level, cluster, round int, rule string) {
	f.ins.filterCounts(level, len(f.kept), len(f.clipped), len(f.disc))
	if f.onFilter != nil {
		f.onFilter(telemetry.FilterDecision{
			Engine:    "pipeline",
			Level:     level,
			Cluster:   cluster,
			Round:     round,
			Rule:      rule,
			Kept:      f.kept,
			Clipped:   f.clipped,
			Discarded: f.disc,
		})
	}
}

// emitAudit publishes the attached audit's verdict for the aggregation that
// just ran. ids[i] is update i's contributor id (device id at the bottom
// level, child-cluster leader id above); nil ids means positions are ids.
func (f *filterEmitter) emitAudit(level, cluster, round int, ids []int) {
	if f == nil {
		return
	}
	f.kept, f.clipped, f.disc = f.kept[:0], f.clipped[:0], f.disc[:0]
	for i, d := range f.audit.Decisions {
		id := i
		if ids != nil {
			id = ids[i]
		}
		switch d {
		case aggregate.DecisionKept:
			f.kept = append(f.kept, id)
		case aggregate.DecisionClipped:
			f.clipped = append(f.clipped, id)
		default:
			f.disc = append(f.disc, id)
		}
	}
	f.publish(level, cluster, round, f.audit.Rule)
}

// emitConsensus publishes the top-level voting verdict: excluded proposals
// are discarded contributors, the rest kept. st.Excluded is sorted by the
// protocol, so a two-pointer sweep splits the membership.
func (f *filterEmitter) emitConsensus(level, cluster, round int, ids []int, rule string, st consensus.Stats) {
	if f == nil {
		return
	}
	f.kept, f.clipped, f.disc = f.kept[:0], f.clipped[:0], f.disc[:0]
	ei := 0
	for i, id := range ids {
		if ei < len(st.Excluded) && st.Excluded[ei] == i {
			f.disc = append(f.disc, id)
			ei++
		} else {
			f.kept = append(f.kept, id)
		}
	}
	f.ins.consensusStats(st)
	f.publish(level, cluster, round, rule)
}
