package pipeline

import (
	"testing"

	"abdhfl/internal/fault"
)

// TestPipelineTimeoutQuorumTable drives the Algorithm-4 timeout/quorum
// machinery through its distinct regimes: stragglers cut off by the legacy
// first-arrival timeout, crashed members carried by the fault-plan deadline,
// omission-Byzantine uploads, a failed mid-tree leader, and total transport
// loss (degraded-but-terminating operation).
func TestPipelineTimeoutQuorumTable(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) Config
		check func(t *testing.T, res *Result, err error)
	}{
		{
			// No fault plan: the legacy path arms the deadline at a leader's
			// first arrival. Severe training jitter pushes stragglers past it,
			// so some aggregations must close below quorum, and the cut-off
			// must show up as reduced waiting time σ_w.
			name: "straggler-timeout-subquorum",
			build: func(t *testing.T) Config {
				cfg := buildConfig(t, 3, 4, 4, 6, 1, 0)
				cfg.Timing = DefaultTiming()
				cfg.Timing.TrainJitter = 3
				cfg.CollectTimeout = 150
				return cfg
			},
			check: func(t *testing.T, res *Result, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if res.SubQuorum == 0 {
					t.Fatal("no sub-quorum aggregations despite stragglers past the timeout")
				}
				if res.CompletedRounds != 6 {
					t.Fatalf("completed %d of 6 rounds", res.CompletedRounds)
				}
				for _, tm := range res.Timings {
					if tm.SigmaW < 0 {
						t.Fatalf("round %d sigma_w = %v", tm.Round, tm.SigmaW)
					}
				}
			},
		},
		{
			// φ=1 with a fault-plan crash would stall a pure-quorum run; the
			// collect timeout must carry the crashed member's cluster below
			// quorum instead.
			name: "crash-carried-by-timeout",
			build: func(t *testing.T) Config {
				cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
				cfg.CollectTimeout = 300
				cfg.Faults = &fault.Plan{Seed: 5, CrashFromRound: map[int]int{0: 0}}
				return cfg
			},
			check: func(t *testing.T, res *Result, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if res.SubQuorum == 0 {
					t.Fatal("crashed member never forced a sub-quorum aggregation")
				}
				if res.CompletedRounds == 0 {
					t.Fatal("no rounds completed")
				}
			},
		},
		{
			// An omission-Byzantine device trains but withholds every upload;
			// with φ=0.5 its cluster still closes on the honest member, and the
			// run must account each withheld upload.
			name: "omission-byzantine-accounted",
			build: func(t *testing.T) Config {
				cfg := buildConfig(t, 3, 2, 2, 6, 1, 0)
				cfg.Quorum = 0.5
				cfg.CollectTimeout = 300
				cfg.Faults = &fault.Plan{Seed: 5, OmitProb: map[int]float64{0: 1.0}}
				return cfg
			},
			check: func(t *testing.T, res *Result, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if res.Omitted == 0 {
					t.Fatal("omission device's withheld uploads not counted")
				}
				if res.CompletedRounds != 6 {
					t.Fatalf("completed %d of 6 rounds with quorum 0.5", res.CompletedRounds)
				}
			},
		},
		{
			// A failed level-1 leader starves half the tree from round 1 on;
			// with full quorum the top can only proceed by timing out below it
			// — sub-quorum aggregations over the healthy half keep forming
			// globals.
			name: "leader-failure-degrades",
			build: func(t *testing.T) Config {
				cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
				cfg.CollectTimeout = 300
				cfg.Faults = &fault.Plan{
					Seed:           5,
					LeaderFailures: []fault.LeaderFailure{{Level: 1, Cluster: 0, FromRound: 1}},
				}
				return cfg
			},
			check: func(t *testing.T, res *Result, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if res.CompletedRounds == 0 {
					t.Fatal("no rounds survived the leader failure")
				}
				if res.SubQuorum == 0 {
					t.Fatal("top never closed below quorum despite a starved subtree")
				}
			},
		},
		{
			// Total transport loss: every message dropped. Nothing can
			// complete, but the run must terminate cleanly — deadlines expire,
			// retries back off, collections are abandoned, and the result
			// reports the degradation instead of erroring or hanging.
			name: "total-loss-abandons",
			build: func(t *testing.T) Config {
				cfg := buildConfig(t, 3, 2, 2, 3, 1, 0)
				cfg.CollectTimeout = 100
				cfg.Faults = &fault.Plan{Seed: 5, Drop: 1.0}
				return cfg
			},
			check: func(t *testing.T, res *Result, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if res.CompletedRounds != 0 {
					t.Fatalf("completed %d rounds with 100%% loss", res.CompletedRounds)
				}
				if res.Abandoned == 0 {
					t.Fatal("no collections abandoned despite total loss")
				}
				if res.Network.Dropped == 0 {
					t.Fatal("drops not accounted in network stats")
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.build(t))
			tc.check(t, res, err)
		})
	}
}

// TestPipelineDuplicatesNeverDoubleFill: with heavy duplication and φ=1,
// dedup at every consumer — leaders per (round, contributor), devices per
// formed global — must make duplication content-neutral: the run still waits
// for each distinct member, merges each global once, and learns like the
// fault-free run.
func TestPipelineDuplicatesNeverDoubleFill(t *testing.T) {
	base, err := Run(buildConfig(t, 3, 2, 2, 5, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
	cfg.CollectTimeout = 500
	cfg.Faults = &fault.Plan{Seed: 9, Duplicate: 0.9}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.Duplicated == 0 {
		t.Fatal("no duplicates recorded at 90% duplication")
	}
	if res.CompletedRounds != 5 {
		t.Fatalf("completed %d of 5 rounds", res.CompletedRounds)
	}
	if diff := res.FinalAccuracy - base.FinalAccuracy; diff < -0.05 || diff > 0.05 {
		t.Fatalf("duplication distorted learning: %v vs fault-free %v",
			res.FinalAccuracy, base.FinalAccuracy)
	}
}

// TestPipelineFaultedDeterministic: the same plan and seed must reproduce the
// degraded run exactly, including its fault accounting.
func TestPipelineFaultedDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := buildConfig(t, 3, 2, 2, 5, 1, 0)
		cfg.Quorum = 0.5
		cfg.CollectTimeout = 250
		cfg.Faults = fault.Merge(
			fault.Lossy(21, 0.15, 0.1, 15),
			fault.CrashDevices(21, cfg.Tree.NumDevices(), 1, 1),
		)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.CompletedRounds != b.CompletedRounds ||
		a.SubQuorum != b.SubQuorum || a.Abandoned != b.Abandoned ||
		a.Omitted != b.Omitted || a.Network != b.Network ||
		a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("faulted runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestPipelineBackoffValidation: nonsense timeout knobs must be rejected.
func TestPipelineBackoffValidation(t *testing.T) {
	cfg := buildConfig(t, 3, 2, 2, 3, 1, 0)
	cfg.TimeoutBackoff = 0.5
	if _, err := Run(cfg); err == nil {
		t.Fatal("backoff below 1 accepted")
	}
	cfg = buildConfig(t, 3, 2, 2, 3, 1, 0)
	cfg.TimeoutRetries = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative retries accepted")
	}
}
