package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
	"abdhfl/internal/tensor"
)

// GossipConfig describes a flat gossip-averaging baseline — the "gossip
// topology" alternative the paper's introduction lists next to tree and star
// paradigms. Each round every device trains locally and then aggregates its
// model with Fanout random peers' models using the configured rule; there is
// no hierarchy and no global aggregation, so the reported accuracy is the
// mean over devices' local models.
type GossipConfig struct {
	Rounds int
	// Fanout is the number of random peers each device pulls per round;
	// zero selects 3.
	Fanout     int
	Local      nn.TrainConfig
	Hidden     []int
	Aggregator aggregate.Aggregator
	// NeighborhoodCBA, when set, replaces the aggregation rule inside each
	// device's neighbourhood with a consensus protocol: the group's devices
	// are the members, each scoring every pulled model on its own shard, and
	// the protocol's decision becomes the device's next model. This is the
	// flat-topology analogue of the hierarchical engine's per-cluster CBA —
	// consensus still only ever sees the tiny fanout-sized neighbourhood.
	NeighborhoodCBA consensus.Protocol

	ClientData []*dataset.Dataset
	TestData   *dataset.Dataset

	Byzantine map[int]bool

	Seed      uint64
	EvalEvery int
	Workers   int
	// EvalSample bounds how many devices are evaluated per measurement
	// (mean accuracy over a deterministic sample); zero selects 8.
	EvalSample int
	// Telemetry and OnFilter mirror Config's fields. Gossip reports every
	// per-device neighbourhood aggregation at level 0, with the device's own
	// id as the cluster index and the neighbourhood's device ids as
	// contributors.
	Telemetry *telemetry.Registry
	OnFilter  func(telemetry.FilterDecision)
	// Cohort is the number of devices deterministically sampled to TRAIN per
	// round; zero (or >= the device count) trains everyone. Unsampled
	// devices still gossip, contributing their current (stale) model to
	// their neighbours' aggregations — the flat-topology analogue of
	// cross-device client sampling.
	Cohort int
	// Codec mirrors Config.Codec. Each device's round model crosses one
	// encode→decode hop before the exchange — every peer then pulls the same
	// decoded copy, modeling a device that encodes once and serves all its
	// gossip partners identical bytes. Gossip has no shared global model, so
	// the Delta codec runs with a zero reference here.
	Codec codec.Codec
	// Trace mirrors Config.Trace: causal spans on the logical clock. Gossip
	// forms no global model, so each device's train span feeds its own
	// neighbourhood aggregation and rounds have no critical path.
	Trace *trace.Tracer
}

// Validate reports configuration errors.
func (c *GossipConfig) Validate() error {
	if c.Rounds <= 0 {
		return errors.New("core: gossip Rounds must be positive")
	}
	if len(c.ClientData) < 2 {
		return errors.New("core: gossip needs at least 2 devices")
	}
	if c.TestData == nil || c.TestData.Len() == 0 {
		return errors.New("core: gossip TestData is empty")
	}
	if c.Aggregator == nil && c.NeighborhoodCBA == nil {
		return errors.New("core: gossip Aggregator is nil")
	}
	return nil
}

func (c *GossipConfig) modelSizes() []int {
	hidden := c.Hidden
	if len(hidden) == 0 {
		hidden = []int{32}
	}
	sizes := []int{dataset.Dim}
	sizes = append(sizes, hidden...)
	return append(sizes, dataset.NumClasses)
}

// RunGossip executes the gossip baseline. Byzantine devices are data
// poisoners (their shards are poisoned by the harness); because gossip has
// no aggregation point with a global view, robust rules can only act on the
// tiny per-device neighbourhoods — which is exactly the structural weakness
// the hierarchical design addresses.
func RunGossip(cfg GossipConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = 3
	}
	devices := len(cfg.ClientData)
	if fanout >= devices {
		fanout = devices - 1
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	evalSample := cfg.EvalSample
	if evalSample <= 0 {
		evalSample = 8
	}
	if evalSample > devices {
		evalSample = devices
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := rng.New(cfg.Seed)
	sizes := cfg.modelSizes()
	initParams := nn.New(root.Derive("init"), sizes...).Params()
	params := make([]tensor.Vector, devices)
	for i := range params {
		params[i] = initParams.Clone()
	}
	trained := make([]tensor.Vector, devices)
	hcfg := Config{ClientData: cfg.ClientData, Local: cfg.Local, Byzantine: cfg.Byzantine}
	var evalPool *nn.EvalPool
	if cfg.NeighborhoodCBA != nil {
		evalPool = nn.NewEvalPool(sizes...)
	}

	res := &Result{}
	evalModel := nn.NewShaped(sizes...)
	evalWS := nn.NewWorkspace(evalModel)
	trainer := newLocalTrainer(sizes, workers, devices)
	// Aggregation memory persists across rounds: one warm scratch for the
	// rule's buffers, a reusable peer-group slice, and double-buffered
	// per-device model storage (round r writes bufs[r%2] while bufs[(r-1)%2]
	// still holds the params the trainer just read).
	aggScratch := aggregate.NewScratch(workers)
	codecScratch := codec.NewScratch()
	ins := newInstruments(cfg.Telemetry, "gossip", 1)
	ins.codecInfo(cfg.Codec, len(initParams))
	fe := newFilterEmitter(ins, cfg.OnFilter, "gossip")
	fe.attach(aggScratch)
	ct := newCoreTracer(cfg.Trace, 0, wireBytesOf(cfg.Codec, len(initParams)))
	if ct != nil && fe == nil {
		fe = &filterEmitter{engine: "gossip"}
		fe.attach(aggScratch)
	}
	group := make([]tensor.Vector, 0, fanout+1)
	groupIDs := make([]int, 0, fanout+1)
	dim := len(initParams)
	var aggBufs [2][]tensor.Vector
	for round := 0; round < cfg.Rounds; round++ {
		roundRNG := root.Derive(fmt.Sprintf("round-%d", round))
		ct.beginRound(round)
		var tRound, tPhase time.Time
		commBefore := res.Comm
		if ins.enabled() {
			tRound = time.Now()
			tPhase = tRound
		}
		// Local training: each sampled device trains its own current model;
		// benched devices carry their stale model into the exchange.
		skip := drawGossipSkip(cfg, roundRNG, devices)
		trainLocalFrom(trainer, hcfg, params, trained, skip, roundRNG)
		res.TrainerActivations += devices - len(skip)
		if ct != nil {
			for id := 0; id < devices; id++ {
				if !skip[id] {
					ct.trainGossip(round, id)
				}
			}
		}
		// Codec hop: each device encodes its round model once; every peer
		// that pulls it receives the same decoded copy.
		if cfg.Codec != nil {
			for id, u := range trained {
				if _, err := codec.Transcode(cfg.Codec, u, codecScratch); err != nil {
					return nil, fmt.Errorf("core: gossip round %d device %d codec: %w", round, id, err)
				}
			}
		}
		if ins.enabled() {
			ins.observePhase(phaseTrain, time.Since(tPhase))
			tPhase = time.Now()
		}
		// Gossip exchange: each device aggregates its model with fanout
		// random peers' trained models.
		if aggBufs[round%2] == nil {
			aggBufs[round%2] = make([]tensor.Vector, devices)
		}
		next := aggBufs[round%2]
		for id := 0; id < devices; id++ {
			r := roundRNG.Derive(fmt.Sprintf("peers-%d", id))
			group = append(group[:0], trained[id])
			groupIDs = append(groupIDs[:0], id)
			for _, p := range r.Choice(devices, fanout+1) {
				if p != id && len(group) <= fanout {
					group = append(group, trained[p])
					groupIDs = append(groupIDs, p)
				}
			}
			if next[id] == nil {
				next[id] = tensor.NewVector(dim)
			}
			if cfg.NeighborhoodCBA != nil {
				// Neighbourhood consensus: the group's devices are the
				// members, each scoring every pulled model on its own shard.
				cctx := &consensus.Context{
					Members:   len(group),
					Validator: localValidator(hcfg, groupIDs, evalPool),
					Rand:      roundRNG.Derive(fmt.Sprintf("cba-%d", id)),
					Workers:   workers,
					Round:     round,
				}
				out, st, err := cfg.NeighborhoodCBA.Agree(cctx, group)
				if err != nil {
					return nil, fmt.Errorf("core: gossip round %d device %d: %w", round, id, err)
				}
				copy(next[id], out)
				fe.emitConsensus(0, id, round, groupIDs, cfg.NeighborhoodCBA.Name(), st)
				if ct != nil {
					kept, filtered := fe.verdictCounts()
					ct.gossipAggregate(round, id, cfg.NeighborhoodCBA.Name(), kept, filtered)
				}
				res.Comm.ModelTransfers += st.ModelTransfers + len(group) - 1
				res.Comm.ScalarMessages += st.Messages - st.ModelTransfers
			} else {
				if err := cfg.Aggregator.AggregateInto(next[id], aggScratch, group); err != nil {
					return nil, fmt.Errorf("core: gossip round %d device %d: %w", round, id, err)
				}
				fe.emitAudit(0, id, round, groupIDs)
				if ct != nil {
					kept, filtered := fe.verdictCounts()
					ct.gossipAggregate(round, id, cfg.Aggregator.Name(), kept, filtered)
				}
				res.Comm.ModelTransfers += len(group) - 1
			}
		}
		params = next
		if cfg.Codec != nil {
			moved := res.Comm.ModelTransfers - commBefore.ModelTransfers
			res.Comm.WireBytes += int64(moved) * int64(cfg.Codec.WireBytes(dim))
		}
		if ins.enabled() {
			ins.observePhase(phaseAggregate, time.Since(tPhase))
			tPhase = time.Now()
		}

		if (round+1)%evalEvery == 0 || round == cfg.Rounds-1 {
			// Mean accuracy over a deterministic device sample.
			er := root.Derive(fmt.Sprintf("eval-%d", round))
			sum := 0.0
			for _, id := range er.Choice(devices, evalSample) {
				evalModel.SetParams(params[id])
				sum += nn.AccuracyWS(evalModel, evalWS, cfg.TestData)
			}
			acc := sum / float64(evalSample)
			res.Curve = append(res.Curve, RoundStat{Round: round + 1, Accuracy: acc})
			ins.evalDone(acc, 0)
			ct.eval(round)
			if ins.enabled() {
				ins.observePhase(phaseEval, time.Since(tPhase))
			}
		}
		if ins.enabled() {
			delta := res.Comm
			delta.ModelTransfers -= commBefore.ModelTransfers
			delta.ScalarMessages -= commBefore.ScalarMessages
			delta.WireBytes -= commBefore.WireBytes
			ins.roundDone(time.Since(tRound), delta)
		}
		ct.endRound(round)
	}
	if len(res.Curve) > 0 {
		res.FinalAccuracy = res.Curve[len(res.Curve)-1].Accuracy
	}
	return res, nil
}

// trainLocalFrom is localTrainer.round with per-device start parameters
// (gossip has no shared global model). out buffers are reused across rounds:
// gossip aggregation copies every kept model's values into its own output
// buffer, so trained vectors are never retained past the round. Skipped
// devices copy their start model into their out buffer unchanged — they
// gossip a stale model instead of a fresh one. (The copy, rather than an
// alias, keeps out buffers disjoint from the aggregation double-buffers.)
func trainLocalFrom(t *localTrainer, cfg Config, starts, out []tensor.Vector, skip map[int]bool, roundRNG *rng.RNG) {
	devices := len(starts)
	jobs := make(chan int)
	done := make(chan struct{})
	for w := range t.models {
		go func(m *nn.Model, ws *nn.Workspace) {
			for id := range jobs {
				m.SetParams(starts[id])
				r := roundRNG.Derive(fmt.Sprintf("device-%d", id))
				nn.SGDWS(m, ws, cfg.ClientData[id], cfg.Local, r)
				out[id] = m.ParamsInto(out[id])
			}
			done <- struct{}{}
		}(t.models[w], t.wss[w])
	}
	for id := 0; id < devices; id++ {
		if skip[id] {
			if out[id] == nil {
				out[id] = tensor.NewVector(len(starts[id]))
			}
			copy(out[id], starts[id])
			continue
		}
		jobs <- id
	}
	close(jobs)
	for range t.models {
		<-done
	}
}

// drawGossipSkip benches every device outside the round's deterministic
// k-cohort (nil when cohort sampling is off).
func drawGossipSkip(cfg GossipConfig, roundRNG *rng.RNG, devices int) map[int]bool {
	if cfg.Cohort <= 0 || cfg.Cohort >= devices {
		return nil
	}
	r := roundRNG.Derive("cohort")
	pick := make([]int, cfg.Cohort)
	r.ChoiceInto(pick, devices, make([]int, devices))
	in := make([]bool, devices)
	for _, p := range pick {
		in[p] = true
	}
	skip := make(map[int]bool, devices-cfg.Cohort)
	for id := 0; id < devices; id++ {
		if !in[id] {
			skip[id] = true
		}
	}
	return skip
}
