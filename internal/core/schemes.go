package core

import (
	"fmt"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/consensus"
)

// Scheme enumerates the four Byzantine-resistance combinations of the
// paper's Table III.
type Scheme int

const (
	// Scheme1 uses BRA for partial aggregation and CBA at the top — the
	// paper's evaluation configuration, suited to FL with masses of devices.
	Scheme1 Scheme = iota + 1
	// Scheme2 uses CBA for partial aggregation and BRA at the top, suited to
	// smaller memberships that are sensitive to malicious participants.
	Scheme2
	// Scheme3 uses BRA at every level: fastest aggregation, intermediate
	// robustness.
	Scheme3
	// Scheme4 uses CBA at every level: highest communication cost, best
	// robustness.
	Scheme4
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Scheme1:
		return "scheme-1 (BRA partial / CBA global)"
	case Scheme2:
		return "scheme-2 (CBA partial / BRA global)"
	case Scheme3:
		return "scheme-3 (BRA partial / BRA global)"
	case Scheme4:
		return "scheme-4 (CBA partial / CBA global)"
	}
	return fmt.Sprintf("scheme-%d (invalid)", int(s))
}

// Rules returns the per-level rules of the scheme, using the given BRA rule
// and CBA protocol as the building blocks.
func (s Scheme) Rules(bra aggregate.Aggregator, cba consensus.Protocol) (partial, global LevelRule, err error) {
	switch s {
	case Scheme1:
		return LevelRule{BRA: bra}, LevelRule{CBA: cba}, nil
	case Scheme2:
		return LevelRule{CBA: cba}, LevelRule{BRA: bra}, nil
	case Scheme3:
		return LevelRule{BRA: bra}, LevelRule{BRA: bra}, nil
	case Scheme4:
		return LevelRule{CBA: cba}, LevelRule{CBA: cba}, nil
	}
	return LevelRule{}, LevelRule{}, fmt.Errorf("core: unknown scheme %d", int(s))
}

// Schemes lists all four schemes of Table III.
func Schemes() []Scheme { return []Scheme{Scheme1, Scheme2, Scheme3, Scheme4} }
