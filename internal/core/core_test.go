package core

import (
	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/topology"
)

// buildScenario assembles a small but complete ABD-HFL configuration:
// levels/m/top topology, IID shards, optional label-flip poisoning of the
// first `byz` devices.
func buildScenario(t testing.TB, levels, m, top, rounds, samplesPerClient, byz int) Config {
	t.Helper()
	tree, err := topology.NewECSM(levels, m, top)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	devices := tree.NumDevices()
	full := dataset.Generate(r.Derive("train"), devices*samplesPerClient, dataset.DefaultGen())
	shards := dataset.PartitionIID(r.Derive("part"), full, devices)
	test := dataset.Generate(r.Derive("test"), 500, dataset.DefaultGen())
	valPool := dataset.Generate(r.Derive("val"), 400, dataset.DefaultGen())
	valShards := dataset.PartitionIID(r.Derive("valpart"), valPool, top)

	byzMap := map[int]bool{}
	for id := 0; id < byz; id++ {
		byzMap[id] = true
		attack.LabelFlipAll{Target: 9}.Poison(r.Derive("poison"), shards[id])
	}
	return Config{
		Tree:             tree,
		Rounds:           rounds,
		Local:            nn.TrainConfig{LearningRate: 0.1, BatchSize: 16, Iterations: 5},
		Partial:          LevelRule{BRA: aggregate.NewMultiKrum(0.25)},
		Global:           LevelRule{CBA: consensus.Voting{}},
		ClientData:       shards,
		TestData:         test,
		ValidationShards: valShards,
		Byzantine:        byzMap,
		Seed:             7,
		EvalEvery:        rounds, // only final accuracy by default
	}
}

func TestRunHFLLearnsWithoutAttack(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 25, 120, 0)
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("clean accuracy = %v, want > 0.6", res.FinalAccuracy)
	}
	if res.Comm.ModelTransfers == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestRunHFLDeterministic(t *testing.T) {
	run := func() []RoundStat {
		cfg := buildScenario(t, 3, 2, 2, 5, 60, 0)
		cfg.EvalEvery = 1
		res, err := RunHFL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("curve lengths differ")
	}
	for i := range a {
		if a[i].Accuracy != b[i].Accuracy || a[i].Loss != b[i].Loss {
			t.Fatalf("non-deterministic at round %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunHFLWorkerCountInvariance(t *testing.T) {
	// The result must not depend on worker-pool size or scheduling.
	curves := make([][]RoundStat, 2)
	for i, workers := range []int{1, 8} {
		cfg := buildScenario(t, 3, 2, 2, 4, 60, 0)
		cfg.Workers = workers
		cfg.EvalEvery = 1
		res, err := RunHFL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		curves[i] = res.Curve
	}
	for i := range curves[0] {
		if curves[0][i].Accuracy != curves[1][i].Accuracy {
			t.Fatalf("workers changed accuracy at round %d", i)
		}
		// Loss is a float sum, so it only stays bit-identical because the
		// chunked evaluation reduces partials in fixed chunk order.
		if curves[0][i].Loss != curves[1][i].Loss {
			t.Fatalf("workers changed loss at round %d: %v vs %v",
				i, curves[0][i].Loss, curves[1][i].Loss)
		}
	}
}

func TestRunHFLResistsPoisoningAtBound(t *testing.T) {
	// Paper topology (3 levels, m=4, top=4, 64 clients) at 50% label-flip
	// poisoning: MultiKrum per cluster + voting top must hold accuracy while
	// plain-mean vanilla collapses. Reduced rounds/data keep the test fast.
	cfg := buildScenario(t, 3, 4, 4, 12, 80, 32)
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	van, err := RunVanilla(VanillaConfig{
		Rounds:     12,
		Local:      cfg.Local,
		Aggregator: aggregate.Mean{},
		ClientData: cfg.ClientData,
		TestData:   cfg.TestData,
		Byzantine:  cfg.Byzantine,
		Seed:       7,
		EvalEvery:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.55 {
		t.Fatalf("ABD-HFL accuracy under 50%% poisoning = %v, want > 0.55", res.FinalAccuracy)
	}
	if van.FinalAccuracy > res.FinalAccuracy {
		t.Fatalf("vanilla mean (%v) outperformed ABD-HFL (%v) under attack", van.FinalAccuracy, res.FinalAccuracy)
	}
}

func TestVanillaLearnsWithoutAttack(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 20, 120, 0)
	res, err := RunVanilla(VanillaConfig{
		Rounds:     20,
		Local:      cfg.Local,
		Aggregator: aggregate.NewMultiKrum(0.25),
		ClientData: cfg.ClientData,
		TestData:   cfg.TestData,
		Seed:       7,
		EvalEvery:  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.6 {
		t.Fatalf("vanilla clean accuracy = %v", res.FinalAccuracy)
	}
}

func TestRunHFLWithModelAttackAndMedian(t *testing.T) {
	// Cluster size 4 so the coordinate median has a honest majority per
	// cluster: only the first cluster holds a (single) sign-flipping member.
	cfg := buildScenario(t, 3, 4, 4, 8, 60, 1)
	cfg.Partial = LevelRule{BRA: aggregate.Median{}}
	cfg.ModelAttack = attack.SignFlip{Scale: 5}
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.3 {
		t.Fatalf("median + sign-flip accuracy = %v, want > 0.3", res.FinalAccuracy)
	}
}

func TestRunHFLQuorumSubsampling(t *testing.T) {
	cfg := buildScenario(t, 3, 4, 4, 3, 40, 0)
	cfg.Quorum = 0.75
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve")
	}
}

func TestRunHFLAllSchemes(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := buildScenario(t, 3, 2, 2, 3, 40, 1)
			partial, global, err := s.Rules(aggregate.NewMultiKrum(0.25), consensus.Voting{})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Partial, cfg.Global = partial, global
			if _, err := RunHFL(cfg); err != nil {
				t.Fatalf("%s failed: %v", s, err)
			}
		})
	}
}

func TestSchemeRulesWiring(t *testing.T) {
	bra := aggregate.Median{}
	cba := consensus.Voting{}
	p, g, err := Scheme1.Rules(bra, cba)
	if err != nil || p.IsCBA() || !g.IsCBA() {
		t.Fatal("scheme 1 wiring wrong")
	}
	p, g, _ = Scheme2.Rules(bra, cba)
	if !p.IsCBA() || g.IsCBA() {
		t.Fatal("scheme 2 wiring wrong")
	}
	p, g, _ = Scheme3.Rules(bra, cba)
	if p.IsCBA() || g.IsCBA() {
		t.Fatal("scheme 3 wiring wrong")
	}
	p, g, _ = Scheme4.Rules(bra, cba)
	if !p.IsCBA() || !g.IsCBA() {
		t.Fatal("scheme 4 wiring wrong")
	}
	if _, _, err := Scheme(0).Rules(bra, cba); err == nil {
		t.Fatal("invalid scheme accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 2, 20, 0)

	bad := cfg
	bad.Rounds = 0
	if _, err := RunHFL(bad); err == nil {
		t.Fatal("zero rounds accepted")
	}

	bad = cfg
	bad.ClientData = bad.ClientData[:1]
	if _, err := RunHFL(bad); err == nil {
		t.Fatal("shard/device mismatch accepted")
	}

	bad = cfg
	bad.Partial = LevelRule{}
	if _, err := RunHFL(bad); err == nil {
		t.Fatal("empty partial rule accepted")
	}

	bad = cfg
	bad.Partial = LevelRule{BRA: aggregate.Mean{}, CBA: consensus.Voting{}}
	if _, err := RunHFL(bad); err == nil {
		t.Fatal("double partial rule accepted")
	}

	bad = cfg
	bad.ValidationShards = nil
	if _, err := RunHFL(bad); err == nil {
		t.Fatal("CBA without validation shards accepted")
	}

	bad = cfg
	bad.ValidationShards = append([]*dataset.Dataset(nil), cfg.ValidationShards...)
	bad.ValidationShards[0] = &dataset.Dataset{}
	if _, err := RunHFL(bad); err == nil {
		t.Fatal("empty validation shard entry accepted")
	}

	bad = cfg
	bad.Quorum = 1.5
	if _, err := RunHFL(bad); err == nil {
		t.Fatal("quorum > 1 accepted")
	}
}

func TestEvalEveryControlsCurve(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 6, 30, 0)
	cfg.EvalEvery = 2
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 3 {
		t.Fatalf("curve length = %d, want 3", len(res.Curve))
	}
	if res.Curve[len(res.Curve)-1].Round != 6 {
		t.Fatal("final round not evaluated")
	}
}

func TestLevelRuleName(t *testing.T) {
	if n := (LevelRule{BRA: aggregate.Median{}}).Name(); n != "bra:median" {
		t.Fatalf("name = %q", n)
	}
	if n := (LevelRule{CBA: consensus.Voting{}}).Name(); n != "cba:voting" {
		t.Fatalf("name = %q", n)
	}
	if n := (LevelRule{}).Name(); n != "unset" {
		t.Fatalf("name = %q", n)
	}
}

func BenchmarkHFLRound64Clients(b *testing.B) {
	cfg := buildScenario(b, 3, 4, 4, 1, 100, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunHFL(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunHFLOnACSMTree(t *testing.T) {
	// The round engine must work on arbitrary-cluster-size trees (Appendix C),
	// not just the ECSM shape.
	r := rng.New(77)
	tree, err := topology.NewACSM(r, 40, 3, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	devices := tree.NumDevices()
	full := dataset.Generate(r.Derive("train"), devices*60, dataset.DefaultGen())
	shards := dataset.PartitionIID(r.Derive("part"), full, devices)
	test := dataset.Generate(r.Derive("test"), 400, dataset.DefaultGen())
	valPool := dataset.Generate(r.Derive("val"), 300, dataset.DefaultGen())
	valShards := dataset.PartitionIID(r.Derive("valpart"), valPool, tree.Top().Size())
	cfg := Config{
		Tree:             tree,
		Rounds:           8,
		Local:            nn.TrainConfig{LearningRate: 0.1, BatchSize: 16, Iterations: 5},
		Partial:          LevelRule{BRA: aggregate.NewMultiKrum(0.25)},
		Global:           LevelRule{CBA: consensus.Voting{}},
		ClientData:       shards,
		TestData:         test,
		ValidationShards: valShards,
		Seed:             9,
		EvalEvery:        8,
	}
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.3 {
		t.Fatalf("ACSM accuracy = %v", res.FinalAccuracy)
	}
}

func TestRunHFLBackdoorMeasuredByTriggerRate(t *testing.T) {
	// End-to-end backdoor: 25% of clients (the first four bottom clusters)
	// implant a trigger. MultiKrum cluster filtering plus the voting top must
	// keep the GLOBAL model's trigger success rate far below an undefended
	// mean-aggregated vanilla run.
	cfg := buildScenario(t, 3, 4, 4, 15, 80, 0)
	bd := attack.DefaultBackdoor()
	r := rng.New(88)
	for id := 0; id < 16; id++ {
		cfg.Byzantine[id] = true
		bd.Poison(r.Derive("bd"), cfg.ClientData[id])
	}
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	van, err := RunVanilla(VanillaConfig{
		Rounds:     15,
		Local:      cfg.Local,
		Aggregator: aggregate.Mean{},
		ClientData: cfg.ClientData,
		TestData:   cfg.TestData,
		Byzantine:  cfg.Byzantine,
		Seed:       7,
		EvalEvery:  15,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := nn.New(rng.New(1), dataset.Dim, 32, dataset.NumClasses)
	model.SetParams(res.FinalParams)
	hflRate := attack.BackdoorSuccessRate(model, cfg.TestData, bd)
	model.SetParams(van.FinalParams)
	vanRate := attack.BackdoorSuccessRate(model, cfg.TestData, bd)
	if vanRate < 0.3 {
		t.Fatalf("sanity: undefended vanilla trigger rate = %v, expected high", vanRate)
	}
	if hflRate >= vanRate {
		t.Fatalf("ABD-HFL trigger rate %v not below vanilla %v", hflRate, vanRate)
	}
	if hflRate > 0.3 {
		t.Fatalf("ABD-HFL trigger rate = %v, want < 0.3", hflRate)
	}
}

func TestRunHFLWithChurn(t *testing.T) {
	// 20% per-round offline probability: the run must complete, learn, and
	// stay deterministic.
	cfg := buildScenario(t, 3, 4, 4, 10, 80, 0)
	cfg.Churn = ChurnModel{OfflineProb: 0.2}
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.4 {
		t.Fatalf("churn accuracy = %v", res.FinalAccuracy)
	}
	res2, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy != res2.FinalAccuracy {
		t.Fatal("churn made the run non-deterministic")
	}
}

func TestRunHFLChurnWithAttack(t *testing.T) {
	// Churn + model attack: offline Byzantine devices must not break the
	// attack bookkeeping.
	cfg := buildScenario(t, 3, 4, 4, 5, 60, 4)
	cfg.Churn = ChurnModel{OfflineProb: 0.3}
	cfg.ModelAttack = attack.SignFlip{Scale: 3}
	if _, err := RunHFL(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestChurnValidation(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 2, 20, 0)
	cfg.Churn = ChurnModel{OfflineProb: 1.0}
	if _, err := RunHFL(cfg); err == nil {
		t.Fatal("OfflineProb = 1 accepted")
	}
	cfg.Churn = ChurnModel{OfflineProb: -0.1}
	if _, err := RunHFL(cfg); err == nil {
		t.Fatal("negative OfflineProb accepted")
	}
}

func TestGossipLearns(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 1, 120, 0)
	res, err := RunGossip(GossipConfig{
		Rounds:     25,
		Local:      cfg.Local,
		Aggregator: aggregate.Mean{},
		ClientData: cfg.ClientData,
		TestData:   cfg.TestData,
		Seed:       7,
		EvalEvery:  25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("gossip accuracy = %v", res.FinalAccuracy)
	}
	if res.Comm.ModelTransfers == 0 {
		t.Fatal("gossip recorded no transfers")
	}
}

func TestGossipDeterministic(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 1, 60, 0)
	run := func() float64 {
		res, err := RunGossip(GossipConfig{
			Rounds:     5,
			Local:      cfg.Local,
			Aggregator: aggregate.Mean{},
			ClientData: cfg.ClientData,
			TestData:   cfg.TestData,
			Seed:       9,
			EvalEvery:  5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalAccuracy
	}
	if run() != run() {
		t.Fatal("gossip non-deterministic")
	}
}

func TestGossipWeakerThanHierarchyUnderPoisoning(t *testing.T) {
	// The structural claim motivating ABD-HFL: with 50% poisoned devices, a
	// flat gossip (even with a robust rule over its small neighbourhoods)
	// degrades far below the hierarchical system.
	cfg := buildScenario(t, 3, 4, 4, 10, 80, 32)
	hfl, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gossip, err := RunGossip(GossipConfig{
		Rounds:     10,
		Fanout:     3,
		Local:      cfg.Local,
		Aggregator: aggregate.Median{},
		ClientData: cfg.ClientData,
		TestData:   cfg.TestData,
		Byzantine:  cfg.Byzantine,
		Seed:       7,
		EvalEvery:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gossip.FinalAccuracy >= hfl.FinalAccuracy {
		t.Fatalf("gossip (%v) not below ABD-HFL (%v) at 50%% poisoning", gossip.FinalAccuracy, hfl.FinalAccuracy)
	}
}

func TestGossipValidation(t *testing.T) {
	if _, err := RunGossip(GossipConfig{}); err == nil {
		t.Fatal("empty gossip config accepted")
	}
}

func TestRunHFLWithLeaderRotation(t *testing.T) {
	cfg := buildScenario(t, 3, 4, 4, 8, 60, 8)
	cfg.RotateLeaders = true
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.4 {
		t.Fatalf("rotation accuracy = %v", res.FinalAccuracy)
	}
	// Determinism preserved.
	res2, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy != res2.FinalAccuracy {
		t.Fatal("rotation made runs non-deterministic")
	}
}

func TestPartialByLevelOverrides(t *testing.T) {
	// Bottom level uses Median, level 1 uses the default MultiKrum; the run
	// must complete and learn.
	cfg := buildScenario(t, 3, 4, 4, 6, 60, 4)
	cfg.PartialByLevel = map[int]LevelRule{
		2: {BRA: aggregate.Median{}},
	}
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.3 {
		t.Fatalf("per-level accuracy = %v", res.FinalAccuracy)
	}
}

func TestPartialByLevelValidation(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 2, 20, 0)
	cfg.PartialByLevel = map[int]LevelRule{0: {BRA: aggregate.Mean{}}}
	if _, err := RunHFL(cfg); err == nil {
		t.Fatal("level-0 override accepted (that's Global's job)")
	}
	cfg.PartialByLevel = map[int]LevelRule{1: {}}
	if _, err := RunHFL(cfg); err == nil {
		t.Fatal("empty per-level rule accepted")
	}
}

func TestPartialByLevelCBAAtOneLevel(t *testing.T) {
	// Mixed setup: voting CBA inside level-1 clusters, BRA at the bottom.
	cfg := buildScenario(t, 3, 2, 2, 4, 40, 0)
	cfg.PartialByLevel = map[int]LevelRule{
		1: {CBA: consensus.Voting{}},
	}
	if _, err := RunHFL(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOnRoundCallback(t *testing.T) {
	cfg := buildScenario(t, 3, 2, 2, 4, 30, 0)
	cfg.EvalEvery = 2
	var seen []int
	cfg.OnRound = func(s RoundStat) { seen = append(seen, s.Round) }
	if _, err := RunHFL(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 4 {
		t.Fatalf("callback rounds = %v", seen)
	}
}
