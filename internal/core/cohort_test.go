package core

import (
	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/telemetry"
)

func TestCohortSamplesKPerCluster(t *testing.T) {
	cfg := buildScenario(t, 3, 4, 2, 3, 40, 0)
	cfg.Global = LevelRule{BRA: aggregate.Mean{}} // keep the run cheap
	cfg.Cohort = 2
	bottomClusters := len(cfg.Tree.Clusters[cfg.Tree.Bottom()])

	// Collect the bottom-level contributor ids per (round, cluster).
	type key struct{ round, cluster int }
	contributors := map[key][]int{}
	cfg.OnFilter = func(d telemetry.FilterDecision) {
		if d.Level != cfg.Tree.Bottom() {
			return
		}
		ids := append(append(append([]int{}, d.Kept...), d.Clipped...), d.Discarded...)
		contributors[key{d.Round, d.Cluster}] = ids
	}
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Cohort * bottomClusters * cfg.Rounds
	if res.TrainerActivations != want {
		t.Fatalf("TrainerActivations = %d, want %d (cohort %d × %d clusters × %d rounds)",
			res.TrainerActivations, want, cfg.Cohort, bottomClusters, cfg.Rounds)
	}
	if len(contributors) != bottomClusters*cfg.Rounds {
		t.Fatalf("saw %d bottom aggregations, want %d", len(contributors), bottomClusters*cfg.Rounds)
	}
	for k, ids := range contributors {
		if len(ids) != cfg.Cohort {
			t.Fatalf("round %d cluster %d aggregated %d contributors, want %d", k.round, k.cluster, len(ids), cfg.Cohort)
		}
		c := cfg.Tree.Clusters[cfg.Tree.Bottom()][k.cluster]
		for _, id := range ids {
			if !c.Contains(id) {
				t.Fatalf("round %d cluster %d: contributor %d not a member", k.round, k.cluster, id)
			}
		}
	}
}

func TestCohortLazyBuffersBoundedByActiveSet(t *testing.T) {
	cfg := buildScenario(t, 3, 4, 2, 4, 40, 0)
	cfg.Global = LevelRule{BRA: aggregate.Mean{}}
	cfg.Cohort = 1
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devices := cfg.Tree.NumDevices()
	perRound := len(cfg.Tree.Clusters[cfg.Tree.Bottom()]) // 1 trainer per cluster
	if res.TrainerBuffers > perRound {
		t.Fatalf("materialized %d buffers for a %d-device round (devices=%d): state not lazy",
			res.TrainerBuffers, perRound, devices)
	}
	if res.TrainerBuffers == 0 {
		t.Fatal("no buffers materialized")
	}
}

func TestCohortFullSizeMatchesUnsampled(t *testing.T) {
	// Cohort >= cluster size must be bit-identical to cohort off: the
	// sampling draw is skipped entirely and the lazy buffer pool reproduces
	// the eager engine's values exactly.
	run := func(cohort int) *Result {
		cfg := buildScenario(t, 3, 2, 2, 3, 40, 2)
		cfg.Global = LevelRule{BRA: aggregate.Mean{}}
		cfg.Cohort = cohort
		cfg.EvalEvery = 1
		res, err := RunHFL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, full := run(0), run(2) // m = 2, so cohort 2 is the whole cluster
	if len(off.Curve) != len(full.Curve) {
		t.Fatal("curve lengths differ")
	}
	for i := range off.Curve {
		if off.Curve[i] != full.Curve[i] {
			t.Fatalf("round %d diverged: %+v vs %+v", i, off.Curve[i], full.Curve[i])
		}
	}
	for i := range off.FinalParams {
		if off.FinalParams[i] != full.FinalParams[i] {
			t.Fatalf("FinalParams[%d] diverged", i)
		}
	}
}

func TestCohortWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []RoundStat {
		cfg := buildScenario(t, 3, 4, 2, 3, 40, 4)
		cfg.Global = LevelRule{BRA: aggregate.Mean{}}
		cfg.Cohort = 2
		cfg.Workers = workers
		cfg.EvalEvery = 1
		res, err := RunHFL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cohort run depends on worker count at round %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCohortWithChurnComposes(t *testing.T) {
	cfg := buildScenario(t, 3, 4, 2, 4, 40, 0)
	cfg.Global = LevelRule{BRA: aggregate.Mean{}}
	cfg.Cohort = 2
	cfg.Churn.OfflineProb = 0.3
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Offline devices are removed from the sampled cohort, so activations
	// stay at or below the cohort budget.
	maxAct := cfg.Cohort * len(cfg.Tree.Clusters[cfg.Tree.Bottom()]) * cfg.Rounds
	if res.TrainerActivations > maxAct || res.TrainerActivations == 0 {
		t.Fatalf("TrainerActivations = %d, want in (0, %d]", res.TrainerActivations, maxAct)
	}
}

func TestCohortValidation(t *testing.T) {
	cfg := buildScenario(t, 2, 2, 2, 1, 10, 0)
	cfg.Cohort = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Cohort accepted")
	}
}

func TestVanillaCohort(t *testing.T) {
	base := buildScenario(t, 2, 4, 2, 3, 40, 0)
	run := func() *Result {
		cfg := VanillaConfig{
			Rounds:     3,
			Local:      base.Local,
			Aggregator: aggregate.Mean{},
			ClientData: base.ClientData,
			TestData:   base.TestData,
			Seed:       7,
			Cohort:     3,
		}
		var audited [][]int
		cfg.OnFilter = func(d telemetry.FilterDecision) {
			audited = append(audited, append([]int{}, d.Kept...))
		}
		res, err := RunVanilla(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ids := range audited {
			if len(ids) != 3 {
				t.Fatalf("audit saw %d contributors, want cohort 3", len(ids))
			}
		}
		return res
	}
	a, b := run(), run()
	if a.TrainerActivations != 3*3 {
		t.Fatalf("TrainerActivations = %d, want 9", a.TrainerActivations)
	}
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatal("vanilla cohort run not deterministic")
	}
	if a.Comm.ModelTransfers != 2*3*3 {
		t.Fatalf("ModelTransfers = %d, want %d", a.Comm.ModelTransfers, 2*3*3)
	}
}

func TestGossipCohort(t *testing.T) {
	base := buildScenario(t, 2, 4, 2, 3, 40, 0)
	run := func() *Result {
		cfg := GossipConfig{
			Rounds:     3,
			Local:      base.Local,
			Aggregator: aggregate.Mean{},
			ClientData: base.ClientData,
			TestData:   base.TestData,
			Seed:       7,
			Cohort:     2,
		}
		res, err := RunGossip(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TrainerActivations != 2*3 {
		t.Fatalf("TrainerActivations = %d, want 6", a.TrainerActivations)
	}
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatal("gossip cohort run not deterministic")
	}
}
