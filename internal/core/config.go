// Package core assembles the paper's contribution: the ABD-HFL learning
// engines. RunHFL executes Algorithms 1-6 as a deterministic, logically
// synchronous round engine (used by the accuracy experiments of Table V and
// Fig 3); the async pipeline engine lives in internal/pipeline; RunVanilla
// is the star-topology baseline the paper compares against. Each level of
// the tree can aggregate with a Byzantine-robust rule (BRA) or a
// consensus-based protocol (CBA), giving the four Schemes of Table III.
package core

import (
	"errors"
	"fmt"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
	"abdhfl/internal/topology"
)

// LevelRule selects the aggregation used at a tier of the tree: exactly one
// of BRA or CBA must be set.
type LevelRule struct {
	BRA aggregate.Aggregator
	CBA consensus.Protocol
}

// IsCBA reports whether the rule is consensus-based.
func (r LevelRule) IsCBA() bool { return r.CBA != nil }

func (r LevelRule) validate(what string) error {
	if (r.BRA == nil) == (r.CBA == nil) {
		return fmt.Errorf("core: %s rule must set exactly one of BRA or CBA", what)
	}
	return nil
}

// Name returns the rule's display name.
func (r LevelRule) Name() string {
	if r.CBA != nil {
		return "cba:" + r.CBA.Name()
	}
	if r.BRA != nil {
		return "bra:" + r.BRA.Name()
	}
	return "unset"
}

// Config describes one ABD-HFL run.
type Config struct {
	Tree *topology.Tree
	// Rounds is the paper's R (global rounds).
	Rounds int
	// Local is the per-client SGD configuration (the paper's T iterations).
	Local nn.TrainConfig
	// Hidden lists hidden-layer widths of the DNN; input/output widths come
	// from the dataset. Nil selects [32].
	Hidden []int

	// Partial is the aggregation rule for all intermediate levels (the
	// paper's levels 1..L); Global is the top-level (level 0) rule.
	Partial LevelRule
	Global  LevelRule
	// PartialByLevel optionally overrides Partial for specific intermediate
	// levels (map key = level index, 1..bottom) — the paper's "model
	// aggregation at different levels using different types of approaches".
	// Levels without an entry use Partial.
	PartialByLevel map[int]LevelRule

	// ClientData[i] is device i's training shard. Byzantine devices' shards
	// are poisoned by the harness before the run (data-poisoning attacks).
	ClientData []*dataset.Dataset
	// TestData is the held-out evaluation set for reported accuracy.
	TestData *dataset.Dataset
	// ValidationShards[j] is top-level node j's private validation set used
	// by CBA validators (the paper assigns the test pool evenly to the four
	// top nodes). Required when any CBA rule is used.
	ValidationShards []*dataset.Dataset

	// Byzantine marks devices as malicious. With a nil ModelAttack they are
	// pure data poisoners (the paper's Table V setting: even a malicious
	// leader aggregates honestly). With a ModelAttack they also corrupt
	// their submitted parameter vectors.
	Byzantine   map[int]bool
	ModelAttack attack.ModelPoison

	// Seed drives every stochastic component.
	Seed uint64
	// EvalEvery is the round interval between test-accuracy measurements;
	// zero selects 1. The final round is always evaluated.
	EvalEvery int
	// OnRound, if non-nil, receives every evaluated RoundStat as the run
	// progresses — streaming progress for long experiments.
	OnRound func(RoundStat)
	// Telemetry, when non-nil, receives the run's metrics: round and phase
	// wall-clock histograms, accuracy/loss gauges, communication counters,
	// consensus vote tallies, and per-level filter kept/clipped/discarded
	// counts. Nil disables instrumentation entirely (the engines skip even
	// the clock reads).
	Telemetry *telemetry.Registry
	// OnFilter, if non-nil, receives every aggregation step's filtering
	// verdict — which contributor ids were kept, clipped, or discarded at
	// each (level, cluster, round). The decision's id slices are reused
	// between calls; consumers must copy or reduce them before returning.
	OnFilter func(telemetry.FilterDecision)
	// Trace, when non-nil, receives causal spans on a deterministic logical
	// clock: per-device train spans, per-(level,cluster) aggregations with
	// rule and kept/filtered counts, global formation, phase envelopes, and
	// round spans. Output is byte-identical for every Workers value and
	// tracer shard count. Nil disables emission entirely.
	Trace *trace.Tracer
	// Workers bounds the worker pools of the run's parallel hot paths:
	// local training, consensus validator scoring, test-set evaluation, and
	// the robust-aggregation kernels (coordinate statistics and pairwise
	// distances fan out over fixed-size chunks). Zero selects GOMAXPROCS.
	// Results are bit-identical for every value — per-device/per-member work
	// derives its own RNG stream, reductions run in a fixed order, and the
	// aggregation kernels partition work identically regardless of worker
	// count.
	Workers int
	// Quorum is the paper's φ: the fraction of a cluster's models a leader
	// waits for before aggregating. The synchronous round engine uses it to
	// subsample stragglers deterministically; zero selects 1 (all models).
	Quorum float64
	// RotateLeaders re-elects every cluster's leader each round
	// (leader = members[round mod size], upper levels rebuilt from the new
	// leaders) — the paper's leader election applied over time. It changes
	// which devices act as validators and consensus members at upper levels.
	RotateLeaders bool
	// Churn models the paper's Assumption 3 (nodes may join or leave
	// existing clusters): each round every device is independently offline
	// with probability OfflineProb and contributes no update that round.
	// Clusters whose members are all offline contribute no partial model;
	// the level above simply aggregates fewer inputs.
	Churn ChurnModel
	// Codec, when non-nil, passes every model transfer on the
	// device→leader→root path (uploads, per-level partials, dissemination)
	// through an encode→decode hop, so the run reflects both the wire size
	// (CommStats.WireBytes) and the information loss of compressed updates.
	// The Delta codec uses the round's start global model as its reference.
	// Nil — and the bit-exact Identity codec — reproduce the uncompressed
	// run's results exactly; lossy codecs perturb only the vectors, never the
	// rng streams.
	Codec codec.Codec
	// Cohort is the number of trainers deterministically sampled from each
	// bottom cluster per round (cross-device FL's client sampling). Devices
	// outside the round's cohort contribute no update — attack placement and
	// filter auditing see only the sampled subset — and hold no materialized
	// model state, which is what lets runs scale far past the worker count.
	// Zero (or >= cluster size) trains every member, the original behaviour.
	Cohort int
}

// ChurnModel describes per-round device availability.
type ChurnModel struct {
	// OfflineProb is the per-round probability a device is offline.
	OfflineProb float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Tree == nil {
		return errors.New("core: Config.Tree is nil")
	}
	if err := c.Tree.Validate(); err != nil {
		return err
	}
	if c.Rounds <= 0 {
		return errors.New("core: Rounds must be positive")
	}
	if len(c.ClientData) != c.Tree.NumDevices() {
		return fmt.Errorf("core: %d client shards for %d devices", len(c.ClientData), c.Tree.NumDevices())
	}
	if c.TestData == nil || c.TestData.Len() == 0 {
		return errors.New("core: TestData is empty")
	}
	if err := c.Partial.validate("Partial"); err != nil {
		return err
	}
	if err := c.Global.validate("Global"); err != nil {
		return err
	}
	anyCBA := c.Partial.IsCBA() || c.Global.IsCBA()
	for lvl, rule := range c.PartialByLevel {
		if lvl < 1 || lvl > c.Tree.Bottom() {
			return fmt.Errorf("core: PartialByLevel level %d out of [1, %d]", lvl, c.Tree.Bottom())
		}
		if err := rule.validate(fmt.Sprintf("PartialByLevel[%d]", lvl)); err != nil {
			return err
		}
		anyCBA = anyCBA || rule.IsCBA()
	}
	if c.Global.IsCBA() && len(c.ValidationShards) == 0 {
		// Without this guard the top-level shard validator would compute
		// member % len(ValidationShards) and panic with a mod-by-zero mid-run.
		return errors.New("core: top-level CBA (Global) requires at least one ValidationShard for voting validators")
	}
	if anyCBA {
		if len(c.ValidationShards) == 0 {
			return errors.New("core: CBA rules require ValidationShards")
		}
		for i, s := range c.ValidationShards {
			if s == nil || s.Len() == 0 {
				return fmt.Errorf("core: ValidationShards[%d] is empty", i)
			}
		}
	}
	if c.Quorum < 0 || c.Quorum > 1 {
		return fmt.Errorf("core: Quorum %v out of [0,1]", c.Quorum)
	}
	if p := c.Churn.OfflineProb; p < 0 || p >= 1 {
		if p != 0 {
			return fmt.Errorf("core: Churn.OfflineProb %v out of [0,1)", p)
		}
	}
	if c.Cohort < 0 {
		return fmt.Errorf("core: Cohort %d must be >= 0", c.Cohort)
	}
	return nil
}

func (c *Config) hidden() []int {
	if len(c.Hidden) == 0 {
		return []int{32}
	}
	return c.Hidden
}

func (c *Config) modelSizes() []int {
	sizes := []int{dataset.Dim}
	sizes = append(sizes, c.hidden()...)
	return append(sizes, dataset.NumClasses)
}

// RoundStat is one point of a convergence curve.
type RoundStat struct {
	Round    int
	Accuracy float64
	// Loss is the mean test loss (only filled on evaluated rounds).
	Loss float64
}

// CommStats counts the communication of a run.
type CommStats struct {
	// ModelTransfers counts full-model messages (upload, broadcast,
	// dissemination, consensus model exchange).
	ModelTransfers int
	// ScalarMessages counts light messages (votes, scores).
	ScalarMessages int
	// WireBytes is the total encoded size of all model transfers when a
	// Codec is configured (ModelTransfers × the codec's wire size); zero
	// when transfers are counted in abstract units.
	WireBytes int64
}

// Add accumulates o into s.
func (s *CommStats) Add(o CommStats) {
	s.ModelTransfers += o.ModelTransfers
	s.ScalarMessages += o.ScalarMessages
	s.WireBytes += o.WireBytes
}

// Result is the outcome of a run.
type Result struct {
	FinalAccuracy float64
	// FinalParams is the flat parameter vector of the final global model,
	// loadable into a matching nn.Model for downstream evaluation (e.g.
	// backdoor trigger rates).
	FinalParams []float64
	Curve       []RoundStat
	Comm        CommStats
	// ExcludedByConsensus counts proposals the top-level CBA ruled out
	// across all rounds (0 for BRA tops).
	ExcludedByConsensus int
	// TrainerActivations counts device-train events across the run (devices
	// × rounds when nothing limits participation; fewer under churn or
	// cohort sampling).
	TrainerActivations int
	// TrainerBuffers is the number of update buffers the engine
	// materialized over the whole run. Idle devices hold no model vector, so
	// with cohort sampling this tracks the per-round active set, not the
	// device count — the lazy-state guarantee the scale tests pin.
	TrainerBuffers int
}
