package core

import (
	"fmt"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/telemetry"
)

// Phase indices of the per-round timing histograms.
const (
	phaseTrain = iota
	phaseAggregate
	phaseEval
	numPhases
)

var phaseNames = [numPhases]string{"train", "aggregate", "eval"}

// instruments bundles one engine run's telemetry handles, resolved once at
// startup so the per-event cost is a single atomic operation. A nil
// *instruments (no registry configured) disables every recording; all
// methods are nil-receiver-safe.
type instruments struct {
	rounds    *telemetry.Counter
	roundDur  *telemetry.Histogram
	phases    [numPhases]*telemetry.Histogram
	accuracy  *telemetry.Gauge
	loss      *telemetry.Gauge
	transfers *telemetry.Counter
	scalars   *telemetry.Counter
	excluded  *telemetry.Counter
	votes     *telemetry.Histogram
	wireBytes *telemetry.Counter
	ratio     *telemetry.Gauge
	// kept/clipped/trimmed are indexed by tree level (0 = top).
	kept    []*telemetry.Counter
	clipped []*telemetry.Counter
	trimmed []*telemetry.Counter
}

// newInstruments registers the engine's metric families under the given
// engine label, with per-level filter counters for levels [0, levels).
func newInstruments(reg *telemetry.Registry, engine string, levels int) *instruments {
	if reg == nil {
		return nil
	}
	label := func(name string) string {
		return fmt.Sprintf(`%s{engine=%q}`, name, engine)
	}
	ins := &instruments{
		rounds:    reg.Counter(label("abdhfl_rounds_total")),
		roundDur:  reg.Histogram(label("abdhfl_round_seconds"), nil),
		accuracy:  reg.Gauge(label("abdhfl_accuracy")),
		loss:      reg.Gauge(label("abdhfl_loss")),
		transfers: reg.Counter(label("abdhfl_comm_model_transfers_total")),
		scalars:   reg.Counter(label("abdhfl_comm_scalar_messages_total")),
		excluded:  reg.Counter(label("abdhfl_consensus_excluded_total")),
		votes:     reg.Histogram(label("abdhfl_consensus_votes"), telemetry.LinearBuckets(0, 1, 17)),
		wireBytes: reg.Counter(label("abdhfl_codec_wire_bytes_total")),
		ratio:     reg.Gauge(label("abdhfl_codec_compression_ratio")),
	}
	for p := 0; p < numPhases; p++ {
		ins.phases[p] = reg.Histogram(
			fmt.Sprintf(`abdhfl_phase_seconds{engine=%q,phase=%q}`, engine, phaseNames[p]), nil)
	}
	for lvl := 0; lvl < levels; lvl++ {
		suffix := fmt.Sprintf(`{engine=%q,level="%d"}`, engine, lvl)
		ins.kept = append(ins.kept, reg.Counter("abdhfl_filter_kept_total"+suffix))
		ins.clipped = append(ins.clipped, reg.Counter("abdhfl_filter_clipped_total"+suffix))
		ins.trimmed = append(ins.trimmed, reg.Counter("abdhfl_filter_discarded_total"+suffix))
	}
	return ins
}

// enabled reports whether recording (and its time.Now calls) should run.
func (ins *instruments) enabled() bool { return ins != nil }

func (ins *instruments) observePhase(p int, d time.Duration) {
	if ins != nil {
		ins.phases[p].Observe(d.Seconds())
	}
}

// roundDone records one completed round and its communication delta.
func (ins *instruments) roundDone(d time.Duration, delta CommStats) {
	if ins == nil {
		return
	}
	ins.rounds.Inc()
	ins.roundDur.Observe(d.Seconds())
	ins.transfers.Add(int64(delta.ModelTransfers))
	ins.scalars.Add(int64(delta.ScalarMessages))
	ins.wireBytes.Add(delta.WireBytes)
}

// codecInfo publishes the configured codec's compression ratio (raw float64
// bytes over wire bytes at the run's model dimension); a nil codec leaves
// the gauge at zero.
func (ins *instruments) codecInfo(c codec.Codec, dim int) {
	if ins == nil || c == nil || dim == 0 {
		return
	}
	ins.ratio.Set(float64(8*dim) / float64(c.WireBytes(dim)))
}

func (ins *instruments) evalDone(acc, loss float64) {
	if ins != nil {
		ins.accuracy.Set(acc)
		ins.loss.Set(loss)
	}
}

// filterCounts feeds one aggregation's verdict tallies into the per-level
// counters (levels beyond the registered range are dropped, which cannot
// happen for tree-derived levels).
func (ins *instruments) filterCounts(level, kept, clipped, trimmed int) {
	if ins == nil || level >= len(ins.kept) {
		return
	}
	ins.kept[level].Add(int64(kept))
	ins.clipped[level].Add(int64(clipped))
	ins.trimmed[level].Add(int64(trimmed))
}

// consensusStats feeds a CBA step's exclusion count and vote tallies.
func (ins *instruments) consensusStats(st consensus.Stats) {
	if ins == nil {
		return
	}
	ins.excluded.Add(int64(len(st.Excluded)))
	for _, v := range st.Votes {
		ins.votes.Observe(float64(v))
	}
}

// filterEmitter turns aggregate.FilterAudit reports and consensus stats
// into per-level counters and FilterDecision callbacks. It owns the
// FilterAudit attached to the run's Scratch and the id slices handed to the
// callback, all reused across emissions — so emitting allocates nothing in
// the steady state. A nil *filterEmitter (telemetry and OnFilter both
// unset) disables auditing entirely: the Scratch keeps a nil Audit and the
// rules skip recording.
type filterEmitter struct {
	ins      *instruments
	onFilter func(telemetry.FilterDecision)
	engine   string
	audit    aggregate.FilterAudit
	kept     []int
	clipped  []int
	disc     []int
}

func newFilterEmitter(ins *instruments, onFilter func(telemetry.FilterDecision), engine string) *filterEmitter {
	if ins == nil && onFilter == nil {
		return nil
	}
	return &filterEmitter{ins: ins, onFilter: onFilter, engine: engine}
}

// attach points the scratch's audit slot at the emitter's report buffer,
// turning on per-rule decision recording.
func (f *filterEmitter) attach(s *aggregate.Scratch) {
	if f != nil {
		s.Audit = &f.audit
	}
}

// publish pushes the current kept/clipped/discarded id sets to the counters
// and the callback.
func (f *filterEmitter) publish(level, cluster, round int, rule string) {
	f.ins.filterCounts(level, len(f.kept), len(f.clipped), len(f.disc))
	if f.onFilter != nil {
		f.onFilter(telemetry.FilterDecision{
			Engine:    f.engine,
			Level:     level,
			Cluster:   cluster,
			Round:     round,
			Rule:      rule,
			Kept:      f.kept,
			Clipped:   f.clipped,
			Discarded: f.disc,
		})
	}
}

// emitAudit publishes the attached audit's verdict for the aggregation that
// just ran. ids[i] is update i's contributor id (device id at the bottom
// level, child-cluster leader id above); nil ids means positions are ids.
func (f *filterEmitter) emitAudit(level, cluster, round int, ids []int) {
	if f == nil {
		return
	}
	f.kept, f.clipped, f.disc = f.kept[:0], f.clipped[:0], f.disc[:0]
	for i, d := range f.audit.Decisions {
		id := i
		if ids != nil {
			id = ids[i]
		}
		switch d {
		case aggregate.DecisionKept:
			f.kept = append(f.kept, id)
		case aggregate.DecisionClipped:
			f.clipped = append(f.clipped, id)
		default:
			f.disc = append(f.disc, id)
		}
	}
	f.publish(level, cluster, round, f.audit.Rule)
}

// emitConsensus publishes a CBA step's verdict: excluded proposals are
// discarded contributors, the rest kept. st.Excluded is sorted by the
// protocols, so a two-pointer sweep splits the membership.
func (f *filterEmitter) emitConsensus(level, cluster, round int, ids []int, rule string, st consensus.Stats) {
	if f == nil {
		return
	}
	f.kept, f.clipped, f.disc = f.kept[:0], f.clipped[:0], f.disc[:0]
	ei := 0
	for i, id := range ids {
		if ei < len(st.Excluded) && st.Excluded[ei] == i {
			f.disc = append(f.disc, id)
			ei++
		} else {
			f.kept = append(f.kept, id)
		}
	}
	f.ins.consensusStats(st)
	f.publish(level, cluster, round, rule)
}

// verdictCounts reports the last emitted verdict's tallies: contributions
// that made it into the result (kept + clipped) and those filtered out.
// Span emission reads these right after emitAudit/emitConsensus.
func (f *filterEmitter) verdictCounts() (kept, filtered int) {
	if f == nil {
		return 0, 0
	}
	return len(f.kept) + len(f.clipped), len(f.disc)
}
