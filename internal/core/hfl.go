package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
)

// RunHFL executes an ABD-HFL learning run as a deterministic round engine:
// per round, every bottom device trains locally (Algorithm 2), partial
// models are aggregated cluster by cluster up the tree (Algorithms 3-4), the
// top level forms the global model with BRA or CBA (Algorithm 6), and the
// new global model is disseminated back to all devices (Algorithm 5). Local
// training fans out over a worker pool; results are independent of
// scheduling because every device derives its own random stream.
func RunHFL(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	sizes := cfg.modelSizes()
	global := nn.New(root.Derive("init"), sizes...)
	globalParams := global.Params()

	tree := cfg.Tree
	devices := tree.NumDevices()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	res := &Result{}
	evalModel := nn.NewShaped(sizes...)
	pool := nn.NewEvalPool(sizes...)
	updates := make([]tensor.Vector, devices)
	trainer := newLocalTrainer(sizes, workers, devices)

	// Aggregation working memory, reused across rounds: one Scratch for every
	// BRA call (aggregation is sequential within a round), one destination
	// buffer per (level, cluster) — inputs at each level live in the level
	// below's buffers, so destinations never alias inputs — and a
	// double-buffered global destination. Leader rotation preserves the tree
	// shape, so the cluster counts are stable.
	aggScratch := aggregate.NewScratch(workers)
	// Codec working memory beside the aggregation scratch: the round loop is
	// sequential, so one Scratch serves every hop of every round.
	codecScratch := codec.NewScratch()
	ins := newInstruments(cfg.Telemetry, "hfl", len(tree.Clusters))
	ins.codecInfo(cfg.Codec, len(globalParams))
	fe := newFilterEmitter(ins, cfg.OnFilter, "hfl")
	fe.attach(aggScratch)
	dim := len(globalParams)
	ct := newCoreTracer(cfg.Trace, tree.Bottom(), wireBytesOf(cfg.Codec, dim))
	if ct != nil && fe == nil {
		// Spans carry kept/filtered counts, which come from the filter
		// audit; run an audit-only emitter (no telemetry, no callback) so
		// the rules record verdicts. Auditing observes, never changes, what
		// a rule computes.
		fe = &filterEmitter{engine: "hfl"}
		fe.attach(aggScratch)
	}
	partialBufs := make([][]tensor.Vector, len(tree.Clusters))
	levelOut := make([][]tensor.Vector, len(tree.Clusters))
	for lvl := range tree.Clusters {
		partialBufs[lvl] = make([]tensor.Vector, len(tree.Clusters[lvl]))
		levelOut[lvl] = make([]tensor.Vector, len(tree.Clusters[lvl]))
	}
	var globalBufs [2]tensor.Vector
	vecsBuf := make([]tensor.Vector, 0, devices)
	idsBuf := make([]int, 0, devices)

	baseTree := tree
	for round := 0; round < cfg.Rounds; round++ {
		roundRNG := root.Derive(fmt.Sprintf("round-%d", round))
		ct.beginRound(round)
		var tRound, tPhase time.Time
		commBefore := res.Comm
		if ins.enabled() {
			tRound = time.Now()
			tPhase = tRound
		}

		// --- Leader re-election: rotate every cluster's leadership and
		// rebuild the upper levels from the new leaders.
		if cfg.RotateLeaders {
			rotated, err := baseTree.Rotate(round)
			if err != nil {
				return nil, fmt.Errorf("core: round %d leader rotation: %w", round, err)
			}
			tree = rotated
		}

		// --- Availability churn (Assumption 3) and cohort sampling: offline
		// and unsampled devices skip the round entirely.
		skip := drawSkip(cfg, roundRNG, tree, drawOffline(cfg, roundRNG, devices))

		// --- Local model training (Algorithm 2) over a worker pool.
		trainer.round(cfg, globalParams, updates, skip, roundRNG)
		res.TrainerActivations += len(trainer.active)

		// --- Model-update attacks by Byzantine devices (omniscient model).
		if cfg.ModelAttack != nil {
			applyModelAttack(cfg, updates, globalParams, roundRNG.Derive("attack"))
		}

		if ct != nil {
			// Train spans, cluster by cluster in member order — the same
			// order for every worker count.
			for ci, c := range tree.Clusters[tree.Bottom()] {
				for _, m := range c.Members {
					if updates[m] != nil {
						ct.train(round, m, ci)
					}
				}
			}
		}

		// --- Device→leader uplink: each submitted update crosses one codec
		// hop. The Delta reference is the round's start model, which every
		// device and leader already holds from dissemination.
		if cfg.Codec != nil {
			codecScratch.Ref = globalParams
			for id, u := range updates {
				if u == nil {
					continue
				}
				if _, err := codec.Transcode(cfg.Codec, u, codecScratch); err != nil {
					return nil, fmt.Errorf("core: round %d device %d codec: %w", round, id, err)
				}
			}
		}

		if ins.enabled() {
			ins.observePhase(phaseTrain, time.Since(tPhase))
			tPhase = time.Now()
		}

		// --- Partial model aggregation (Algorithms 3-4), bottom level up to
		// level 1. partials[i] is the output of cluster i at the current
		// level; at the bottom the inputs are device updates.
		partials := updates
		byLevelInput := func(c *topology.Cluster, lvl int) ([]tensor.Vector, []int) {
			// The shared backing buffers are safe to reuse per cluster: both
			// aggregation paths consume vecs/ids synchronously (BRA copies
			// into its destination, CBA returns a fresh vector).
			vecs := vecsBuf[:0]
			ids := idsBuf[:0]
			for mi, m := range c.Members {
				var v tensor.Vector
				if lvl == tree.Bottom() {
					v = partials[m]
				} else {
					// Members of an upper cluster are leaders of child
					// clusters; the child cluster order matches member order.
					v = partials[childIndex(tree, c, mi)]
				}
				if v != nil {
					vecs = append(vecs, v)
					ids = append(ids, m)
				}
			}
			return vecs, ids
		}
		for lvl := tree.Bottom(); lvl >= 1; lvl-- {
			next := levelOut[lvl]
			for i := range next {
				next[i] = nil
			}
			for ci, c := range tree.Clusters[lvl] {
				vecs, ids := byLevelInput(c, lvl)
				if len(vecs) == 0 {
					// Every contributor is offline this round (churn): the
					// cluster contributes nothing and the level above
					// aggregates fewer inputs.
					continue
				}
				vecs, ids = applyQuorum(cfg, roundRNG, lvl, ci, vecs, ids)
				if partialBufs[lvl][ci] == nil {
					partialBufs[lvl][ci] = tensor.NewVector(dim)
				}
				agg, comm, err := aggregateCluster(cfg, roundRNG, c, vecs, ids, pool, partialBufs[lvl][ci], aggScratch, fe, round)
				if err != nil {
					return nil, fmt.Errorf("core: round %d level %d cluster %d: %w", round, lvl, ci, err)
				}
				if ct != nil {
					parentCi := -1
					if lvl > 1 {
						parentCi = tree.Parent(lvl, ci).Index
					}
					kept, filtered := fe.verdictCounts()
					ct.aggregate(round, lvl, ci, parentCi, ruleForLevel(cfg, lvl).Name(), kept, filtered)
				}
				res.Comm.Add(comm)
				// Leader→parent uplink: the freshly formed partial crosses the
				// next codec hop before the level above consumes it.
				if cfg.Codec != nil {
					if _, err := codec.Transcode(cfg.Codec, agg, codecScratch); err != nil {
						return nil, fmt.Errorf("core: round %d level %d cluster %d codec: %w", round, lvl, ci, err)
					}
				}
				next[ci] = agg
			}
			partials = next
		}

		// --- Global model aggregation (Algorithm 6) at the top. After the
		// level loop, partials holds one model per level-1 cluster, whose
		// leaders are exactly the top cluster's members.
		if globalBufs[round%2] == nil {
			globalBufs[round%2] = tensor.NewVector(dim)
		}
		newGlobal, comm, excluded, err := aggregateTop(cfg, tree, roundRNG, partials, pool, globalBufs[round%2], aggScratch, fe, round, nil)
		if err != nil {
			return nil, fmt.Errorf("core: round %d top level: %w", round, err)
		}
		res.Comm.Add(comm)
		res.ExcludedByConsensus += excluded
		if ct != nil {
			kept, filtered := fe.verdictCounts()
			ct.global(round, cfg.Global.Name(), kept, filtered)
		}
		// Dissemination downlink: the new global crosses one codec hop (all
		// broadcast copies carry the same encoding), deltas referenced
		// against the previous global every receiver still holds. The
		// double-buffered globals keep the reference intact while the new
		// model decodes in place.
		if cfg.Codec != nil {
			codecScratch.Ref = globalParams
			if _, err := codec.Transcode(cfg.Codec, newGlobal, codecScratch); err != nil {
				return nil, fmt.Errorf("core: round %d dissemination codec: %w", round, err)
			}
		}
		globalParams = newGlobal

		// --- Dissemination (Algorithm 5): the global model travels down the
		// tree, one broadcast per cluster.
		res.Comm.Add(disseminationCost(tree))
		if ins.enabled() {
			ins.observePhase(phaseAggregate, time.Since(tPhase))
			tPhase = time.Now()
		}

		// --- Evaluation.
		if (round+1)%evalEvery == 0 || round == cfg.Rounds-1 {
			evalModel.SetParams(globalParams)
			// Evaluate's chunked reduction is worker-count-invariant, so the
			// curve is bit-identical whatever cfg.Workers is.
			acc, loss := nn.Evaluate(evalModel, cfg.TestData, workers)
			stat := RoundStat{Round: round + 1, Accuracy: acc, Loss: loss}
			res.Curve = append(res.Curve, stat)
			ins.evalDone(acc, loss)
			ct.eval(round)
			if cfg.OnRound != nil {
				cfg.OnRound(stat)
			}
			if ins.enabled() {
				ins.observePhase(phaseEval, time.Since(tPhase))
			}
		}
		// Wire-byte accounting: every model transfer this round shipped one
		// codec-encoded vector of the same dimension.
		if cfg.Codec != nil {
			moved := res.Comm.ModelTransfers - commBefore.ModelTransfers
			res.Comm.WireBytes += int64(moved) * int64(cfg.Codec.WireBytes(dim))
		}
		if ins.enabled() {
			delta := res.Comm
			delta.ModelTransfers -= commBefore.ModelTransfers
			delta.ScalarMessages -= commBefore.ScalarMessages
			delta.WireBytes -= commBefore.WireBytes
			ins.roundDone(time.Since(tRound), delta)
		}
		ct.endRound(round)
	}
	if len(res.Curve) > 0 {
		res.FinalAccuracy = res.Curve[len(res.Curve)-1].Accuracy
	}
	res.FinalParams = globalParams
	res.TrainerBuffers = trainer.allocated
	return res, nil
}

// childIndex maps member mi of upper-level cluster c to the index of the
// child cluster it leads at level c.Level+1.
func childIndex(tree *topology.Tree, c *topology.Cluster, mi int) int {
	children := tree.ChildClusters(c.Level, c.Index)
	if mi >= len(children) {
		panic("core: member without child cluster")
	}
	return children[mi].Index
}

// localTrainer owns the per-worker training models/workspaces and a pool of
// update buffers handed out only to the round's active trainers. Every
// device still derives its own random stream, so results are independent of
// both worker count and job scheduling. Idle devices hold NO model vector:
// a buffer exists only between a device's activation and the next round's
// reclaim, so a cohort-sampled run materializes ~active-set buffers instead
// of one per device — the lazy-state half of the million-device scale-out.
type localTrainer struct {
	models []*nn.Model
	wss    []*nn.Workspace
	// pool holds reclaimed update buffers; active lists the ids whose
	// buffers are currently lent out (reclaimed at the next round call,
	// AFTER aggregation has consumed them — all rules copy into their own
	// outputs, never retaining update vectors across rounds).
	pool      []tensor.Vector
	active    []int
	allocated int // total buffers ever materialized (Result.TrainerBuffers)
}

func newLocalTrainer(sizes []int, workers, devices int) *localTrainer {
	t := &localTrainer{
		models: make([]*nn.Model, workers),
		wss:    make([]*nn.Workspace, workers),
	}
	for w := 0; w < workers; w++ {
		t.models[w] = nn.NewShaped(sizes...)
		t.wss[w] = nn.NewWorkspace(t.models[w])
	}
	return t
}

// take hands out a pooled buffer, or nil — the worker's ParamsInto then
// allocates one, which counts as a materialization. Called only from the
// scheduling goroutine.
func (t *localTrainer) take() tensor.Vector {
	if n := len(t.pool); n > 0 {
		v := t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
		return v
	}
	t.allocated++
	return nil
}

// reclaim returns the previous round's lent-out buffers to the pool. The
// slots may hold different vectors than were lent (the attack layer swaps in
// same-dimension poisoned vectors); whatever is there is recycled.
func (t *localTrainer) reclaim(updates []tensor.Vector) {
	for _, id := range t.active {
		if updates[id] != nil {
			t.pool = append(t.pool, updates[id])
			updates[id] = nil
		}
	}
	t.active = t.active[:0]
}

// round runs every active device's local SGD over the worker pool and stores
// flattened parameter updates (skipped devices — offline or outside the
// round's cohort — get nil).
func (t *localTrainer) round(cfg Config, start tensor.Vector, updates []tensor.Vector, skip map[int]bool, roundRNG *rng.RNG) {
	t.reclaim(updates)
	devices := len(updates)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := range t.models {
		wg.Add(1)
		go func(m *nn.Model, ws *nn.Workspace) {
			defer wg.Done()
			for id := range jobs {
				m.SetParams(start)
				r := roundRNG.Derive(fmt.Sprintf("device-%d", id))
				nn.SGDWS(m, ws, cfg.ClientData[id], cfg.Local, r)
				updates[id] = m.ParamsInto(updates[id])
			}
		}(t.models[w], t.wss[w])
	}
	for id := 0; id < devices; id++ {
		if skip[id] {
			updates[id] = nil
			continue
		}
		// Assign the buffer before dispatch: the channel send orders the
		// write against the worker's read, and pool/active stay owned by
		// this goroutine.
		updates[id] = t.take()
		t.active = append(t.active, id)
		jobs <- id
	}
	close(jobs)
	wg.Wait()
}

// trainLocal is the one-shot form of localTrainer.round, kept for engines
// without per-round state (vanilla).
func trainLocal(cfg Config, sizes []int, start tensor.Vector, updates []tensor.Vector, skip map[int]bool, roundRNG *rng.RNG, workers int) {
	newLocalTrainer(sizes, workers, len(updates)).round(cfg, start, updates, skip, roundRNG)
}

// drawOffline samples the round's offline set deterministically.
func drawOffline(cfg Config, roundRNG *rng.RNG, devices int) map[int]bool {
	if cfg.Churn.OfflineProb <= 0 {
		return nil
	}
	r := roundRNG.Derive("churn")
	offline := map[int]bool{}
	for id := 0; id < devices; id++ {
		if r.Float64() < cfg.Churn.OfflineProb {
			offline[id] = true
		}
	}
	return offline
}

// drawSkip composes the round's non-training set: offline devices plus, when
// cohort sampling is on, every bottom-cluster member outside its cluster's
// deterministically sampled k-cohort. Each cluster draws from its own
// derived stream, so the sample is independent of cluster iteration order
// and of every other random draw in the round.
func drawSkip(cfg Config, roundRNG *rng.RNG, tree *topology.Tree, offline map[int]bool) map[int]bool {
	if cfg.Cohort <= 0 {
		return offline
	}
	skip := make(map[int]bool, len(offline))
	for id := range offline {
		skip[id] = true
	}
	bottom := tree.Clusters[tree.Bottom()]
	maxSize := 0
	for _, c := range bottom {
		if c.Size() > maxSize {
			maxSize = c.Size()
		}
	}
	pick := make([]int, 0, cfg.Cohort)
	scratch := make([]int, maxSize)
	for ci, c := range bottom {
		k := cfg.Cohort
		if k >= c.Size() {
			continue // whole cluster trains
		}
		r := roundRNG.DeriveN("cohort", uint64(ci))
		pick = pick[:k]
		r.ChoiceInto(pick, c.Size(), scratch)
		in := scratch[:c.Size()]
		for i := range in {
			in[i] = 0
		}
		for _, p := range pick {
			in[p] = 1
		}
		for mi, m := range c.Members {
			if in[mi] == 0 {
				skip[m] = true
			}
		}
	}
	return skip
}

// applyModelAttack replaces Byzantine devices' updates with attacked
// vectors. Following the Byzantine-FL literature, attacks operate on the
// round's update DELTAS (trained params minus the round's start model), with
// the honest deltas' population statistics as the omniscient attacker's
// knowledge; the poisoned delta is re-anchored at the start model. Attacking
// raw parameter vectors instead would destroy the network in round one
// before any validator can discriminate, which no published attack model
// intends.
func applyModelAttack(cfg Config, updates []tensor.Vector, start tensor.Vector, r *rng.RNG) {
	var honestDeltas []tensor.Vector
	for id, u := range updates {
		if u != nil && !cfg.Byzantine[id] {
			honestDeltas = append(honestDeltas, tensor.Sub(tensor.NewVector(len(u)), u, start))
		}
	}
	if len(honestDeltas) == 0 {
		// Everyone online is Byzantine; attack their own statistics.
		for _, u := range updates {
			if u != nil {
				honestDeltas = append(honestDeltas, tensor.Sub(tensor.NewVector(len(u)), u, start))
			}
		}
	}
	if len(honestDeltas) == 0 {
		return // everyone offline this round
	}
	mean, std := attack.PopulationStats(honestDeltas)
	for id := range updates {
		if !cfg.Byzantine[id] || updates[id] == nil {
			continue
		}
		delta := tensor.Sub(tensor.NewVector(len(start)), updates[id], start)
		poisoned := cfg.ModelAttack.Apply(r, delta, mean, std)
		updates[id] = tensor.Add(poisoned, poisoned, start)
	}
}

// applyQuorum deterministically subsamples a cluster's available models down
// to ceil(φ*size), simulating a leader that stops waiting once the quorum is
// reached (Algorithm 4's φ_ℓ × C_ℓ,i condition).
func applyQuorum(cfg Config, roundRNG *rng.RNG, lvl, ci int, vecs []tensor.Vector, ids []int) ([]tensor.Vector, []int) {
	if cfg.Quorum == 0 || cfg.Quorum >= 1 || len(vecs) <= 1 {
		return vecs, ids
	}
	need := int(math.Ceil(cfg.Quorum * float64(len(vecs))))
	if need < 1 {
		need = 1
	}
	if need >= len(vecs) {
		return vecs, ids
	}
	r := roundRNG.Derive(fmt.Sprintf("quorum-%d-%d", lvl, ci))
	pick := r.Choice(len(vecs), need)
	outV := make([]tensor.Vector, need)
	outI := make([]int, need)
	for k, i := range pick {
		outV[k] = vecs[i]
		outI[k] = ids[i]
	}
	return outV, outI
}

// ruleForLevel returns the aggregation rule for intermediate level lvl.
func ruleForLevel(cfg Config, lvl int) LevelRule {
	if rule, ok := cfg.PartialByLevel[lvl]; ok {
		return rule
	}
	return cfg.Partial
}

// aggregateCluster forms one cluster's partial model with the configured
// intermediate rule and returns its communication cost: members upload to
// the leader and the leader broadcasts the result back (BRA), or all members
// exchange proposals (CBA). BRA writes into the caller-owned dst buffer using
// scratch; CBA protocols return their own fresh vector.
func aggregateCluster(cfg Config, roundRNG *rng.RNG, c *topology.Cluster, vecs []tensor.Vector, ids []int, pool *nn.EvalPool, dst tensor.Vector, scratch *aggregate.Scratch, fe *filterEmitter, round int) (tensor.Vector, CommStats, error) {
	var comm CommStats
	n := len(vecs)
	if n == 0 {
		return nil, comm, fmt.Errorf("cluster (%d,%d) received no models", c.Level, c.Index)
	}
	rule := ruleForLevel(cfg, c.Level)
	if !rule.IsCBA() {
		if err := rule.BRA.AggregateInto(dst, scratch, vecs); err != nil {
			return nil, comm, err
		}
		fe.emitAudit(c.Level, c.Index, round, ids)
		// Uploads to leader (leader's own model is local) + result broadcast
		// to members for storage.
		comm.ModelTransfers += (n - 1) + (c.Size() - 1)
		return dst, comm, nil
	}
	ctx := &consensus.Context{
		Members:   n,
		Byzantine: protocolByzantine(cfg, ids),
		Validator: localValidator(cfg, ids, pool),
		Rand:      roundRNG.Derive(fmt.Sprintf("cba-%d-%d", c.Level, c.Index)),
		Workers:   cfg.Workers,
		Round:     round,
	}
	agg, st, err := rule.CBA.Agree(ctx, vecs)
	if err != nil {
		return nil, comm, err
	}
	fe.emitConsensus(c.Level, c.Index, round, ids, rule.Name(), st)
	comm.ModelTransfers += st.ModelTransfers
	comm.ScalarMessages += st.Messages - st.ModelTransfers
	return agg, comm, nil
}

// aggregateTop forms the global model (Algorithm 6). BRA writes into the
// caller-owned dst buffer (double-buffered by the round loop so the previous
// global model stays intact while the new one forms); CBA protocols return
// their own fresh vector. ballots, when non-nil, injects wire-collected
// member ballots into the consensus context (the node engine's ABA
// exchange); the single-process engine always passes nil and computes them
// locally.
func aggregateTop(cfg Config, tree *topology.Tree, roundRNG *rng.RNG, partials []tensor.Vector, pool *nn.EvalPool, dst tensor.Vector, scratch *aggregate.Scratch, fe *filterEmitter, round int, ballots *consensus.BallotSet) (tensor.Vector, CommStats, int, error) {
	var comm CommStats
	vecs := make([]tensor.Vector, 0, len(partials))
	var ids []int
	for i, p := range partials {
		if p != nil {
			vecs = append(vecs, p)
			if fe != nil {
				// Top-level contributors are the level-1 cluster leaders (or
				// the devices themselves in a degenerate single-level tree).
				if tree.Bottom() == 0 {
					ids = append(ids, i)
				} else {
					ids = append(ids, tree.Clusters[1][i].Leader)
				}
			}
		}
	}
	if len(vecs) == 0 {
		return nil, comm, 0, fmt.Errorf("top level received no partial models")
	}
	if !cfg.Global.IsCBA() {
		if err := cfg.Global.BRA.AggregateInto(dst, scratch, vecs); err != nil {
			return nil, comm, 0, err
		}
		fe.emitAudit(0, 0, round, ids)
		n := len(vecs)
		comm.ModelTransfers += (n - 1) + (n - 1) // uploads to A_{0,0} + broadcast
		return dst, comm, 0, nil
	}
	top := tree.Top()
	ctx := &consensus.Context{
		Members:   len(vecs),
		Byzantine: protocolByzantine(cfg, top.Members[:min(len(vecs), top.Size())]),
		Validator: shardValidator(cfg, pool),
		Rand:      roundRNG.Derive("cba-top"),
		Workers:   cfg.Workers,
		Round:     round,
		Ballots:   ballots,
	}
	agg, st, err := cfg.Global.CBA.Agree(ctx, vecs)
	if err != nil {
		return nil, comm, 0, err
	}
	fe.emitConsensus(0, 0, round, ids, cfg.Global.Name(), st)
	comm.ModelTransfers += st.ModelTransfers
	comm.ScalarMessages += st.Messages - st.ModelTransfers
	return agg, comm, len(st.Excluded), nil
}

// protocolByzantine maps device-level Byzantine flags onto protocol member
// indices. Data poisoners follow the consensus protocol honestly (the
// paper's Table V note); only model attackers deviate inside protocols.
func protocolByzantine(cfg Config, ids []int) map[int]bool {
	if cfg.ModelAttack == nil || cfg.Byzantine == nil {
		return nil
	}
	out := make(map[int]bool)
	for i, id := range ids {
		if cfg.Byzantine[id] {
			out[i] = true
		}
	}
	return out
}

// localValidator scores a proposal by its accuracy on the member device's
// own training shard — the only data an intermediate node holds. Scoring
// runs on pooled evaluation models so the n×n scorings of a voting round
// neither allocate nor contend, and the validator is safe for the consensus
// layer's parallel fan-out.
func localValidator(cfg Config, ids []int, pool *nn.EvalPool) consensus.Validator {
	return func(member int, model tensor.Vector) float64 {
		s := pool.Get()
		defer pool.Put(s)
		s.Model.SetParams(model)
		return nn.AccuracyWS(s.Model, s.WS, cfg.ClientData[ids[member]])
	}
}

// shardValidator scores a proposal by its accuracy on a top node's private
// validation shard (the paper's Appendix D-B voting input). Config.Validate
// rejects CBA configurations without shards before a run starts.
func shardValidator(cfg Config, pool *nn.EvalPool) consensus.Validator {
	return func(member int, model tensor.Vector) float64 {
		shard := cfg.ValidationShards[member%len(cfg.ValidationShards)]
		s := pool.Get()
		defer pool.Put(s)
		s.Model.SetParams(model)
		return nn.AccuracyWS(s.Model, s.WS, shard)
	}
}

// disseminationCost counts the model transfers of Algorithm 5: every cluster
// leader broadcasts the model to its cluster members (members-1 transfers
// per cluster, every level).
func disseminationCost(tree *topology.Tree) CommStats {
	var comm CommStats
	for _, level := range tree.Clusters {
		for _, c := range level {
			comm.ModelTransfers += c.Size() - 1
		}
	}
	return comm
}
