package core

import (
	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/codec"
	"abdhfl/internal/telemetry"
)

// The golden-trace contract: the bit-exact Identity codec must reproduce a
// nil-codec run exactly — same curve, same final parameters — on every core
// engine. Compression then only ever changes results through actual
// information loss, never through plumbing.

func sameResult(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths differ: %d vs %d", tag, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("%s: curve diverges at %d: %+v vs %+v", tag, i, a.Curve[i], b.Curve[i])
		}
	}
	if len(a.FinalParams) != len(b.FinalParams) {
		t.Fatalf("%s: param lengths differ", tag)
	}
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatalf("%s: final params diverge at coordinate %d", tag, i)
		}
	}
}

func TestIdentityCodecGoldenHFL(t *testing.T) {
	run := func(c codec.Codec) *Result {
		cfg := buildScenario(t, 3, 2, 2, 4, 60, 2)
		cfg.EvalEvery = 1
		cfg.Codec = c
		res, err := RunHFL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, ident := run(nil), run(codec.Identity{})
	sameResult(t, "hfl", base, ident)
	if base.Comm.WireBytes != 0 {
		t.Fatal("nil codec must not account wire bytes")
	}
	if ident.Comm.WireBytes == 0 {
		t.Fatal("identity codec must account wire bytes")
	}
	// Every model transfer ships exactly one encoded vector.
	want := int64(ident.Comm.ModelTransfers) * int64(codec.Identity{}.WireBytes(len(ident.FinalParams)))
	if ident.Comm.WireBytes != want {
		t.Fatalf("wire bytes = %d, want transfers×size = %d", ident.Comm.WireBytes, want)
	}
}

func TestIdentityCodecGoldenVanilla(t *testing.T) {
	base := buildScenario(t, 3, 2, 2, 3, 60, 0)
	run := func(c codec.Codec) *Result {
		res, err := RunVanilla(VanillaConfig{
			Rounds:     3,
			Local:      base.Local,
			Aggregator: aggregate.Median{},
			ClientData: base.ClientData,
			TestData:   base.TestData,
			Seed:       7,
			EvalEvery:  1,
			Codec:      c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sameResult(t, "vanilla", run(nil), run(codec.Identity{}))
}

func TestIdentityCodecGoldenGossip(t *testing.T) {
	base := buildScenario(t, 3, 2, 2, 3, 60, 0)
	run := func(c codec.Codec) *Result {
		res, err := RunGossip(GossipConfig{
			Rounds:     3,
			Local:      base.Local,
			Aggregator: aggregate.Mean{},
			ClientData: base.ClientData[:8],
			TestData:   base.TestData,
			Seed:       7,
			EvalEvery:  1,
			EvalSample: 4,
			Codec:      c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base1, ident := run(nil), run(codec.Identity{})
	sameResult(t, "gossip", base1, ident)
	if ident.Comm.WireBytes == 0 {
		t.Fatal("gossip identity codec must account wire bytes")
	}
}

// TestCodecWorkerCountInvariance: lossy codecs are serial, deterministic
// transforms, so a compressed run stays bit-identical for every worker
// count — the same contract the aggregation kernels honor.
func TestCodecWorkerCountInvariance(t *testing.T) {
	for _, name := range []string{"int8", "topk", "delta"} {
		c, err := codec.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var results [2]*Result
		for i, workers := range []int{1, 8} {
			cfg := buildScenario(t, 3, 2, 2, 3, 60, 0)
			cfg.EvalEvery = 1
			cfg.Codec = c
			cfg.Workers = workers
			res, err := RunHFL(cfg)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
		}
		sameResult(t, name, results[0], results[1])
	}
}

// TestLossyCodecsStillLearn: quantized/sparsified/delta-coded runs must stay
// usable — this is the experiment-level sanity floor, not a robustness claim.
func TestLossyCodecsStillLearn(t *testing.T) {
	for _, name := range []string{"int8", "delta"} {
		c, err := codec.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := buildScenario(t, 3, 2, 2, 20, 120, 0)
		cfg.Codec = c
		res, err := RunHFL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalAccuracy < 0.6 {
			t.Fatalf("%s: accuracy %v under compression, want > 0.6", name, res.FinalAccuracy)
		}
	}
}

// TestCodecTelemetryCounters: the wire-byte counter and compression-ratio
// gauge land in the registry.
func TestCodecTelemetryCounters(t *testing.T) {
	reg := telemetry.New()
	cfg := buildScenario(t, 3, 2, 2, 2, 60, 0)
	cfg.Codec = codec.Int8Quant{}
	cfg.Telemetry = reg
	res, err := RunHFL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	wire := snap.Counters[`abdhfl_codec_wire_bytes_total{engine="hfl"}`]
	ratio := snap.Gauges[`abdhfl_codec_compression_ratio{engine="hfl"}`]
	if wire != res.Comm.WireBytes || wire == 0 {
		t.Fatalf("wire counter = %v, want %d", wire, res.Comm.WireBytes)
	}
	if ratio < 7 || ratio > 8.1 {
		t.Fatalf("int8 compression ratio gauge = %v, want ~7.9", ratio)
	}
}
