// Distributed-engine surface: the exported wrappers internal/node uses to
// run RunHFL's aggregation path verbatim from separate processes. The round
// engine's determinism discipline — every random draw comes from a labeled
// stream derived (not split) from the run seed — means any process can
// reproduce any stream locally; what the node engine additionally needs is
// the private aggregation code (quorum subsampling, cluster/top aggregation
// with filter auditing) applied to the vectors it collected off the wire.
// These wrappers expose exactly that, so a distributed run and RunHFL
// produce byte-identical models, σ-accounting, and filter audits for the
// supported configuration subset (no omniscient ModelAttack, no
// RotateLeaders — both need a global view no single process has).
package core

import (
	"abdhfl/internal/aggregate"
	"abdhfl/internal/consensus"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/tensor"
	"abdhfl/internal/topology"
)

// ModelSizes returns the layer sizes of the run's model (input, hidden...,
// output) — what nn.New/NewShaped take.
func (c *Config) ModelSizes() []int { return c.modelSizes() }

// DrawRoundSkip reproduces the round's non-training set (churn plus cohort
// sampling) exactly as RunHFL draws it. Every process computes the same
// set from the shared config and round stream, which is what lets an
// aggregator know which contributors to expect without any signaling.
func DrawRoundSkip(cfg Config, roundRNG *rng.RNG) map[int]bool {
	return drawSkip(cfg, roundRNG, cfg.Tree, drawOffline(cfg, roundRNG, cfg.Tree.NumDevices()))
}

// ApplyQuorum exposes the engine's deterministic quorum subsampling
// (Algorithm 4's φ condition) for cluster (lvl, ci).
func ApplyQuorum(cfg Config, roundRNG *rng.RNG, lvl, ci int, vecs []tensor.Vector, ids []int) ([]tensor.Vector, []int) {
	return applyQuorum(cfg, roundRNG, lvl, ci, vecs, ids)
}

// LevelRuleFor returns the aggregation rule used at intermediate level lvl
// (level 0 is cfg.Global).
func LevelRuleFor(cfg Config, lvl int) LevelRule {
	if lvl == 0 {
		return cfg.Global
	}
	return ruleForLevel(cfg, lvl)
}

// DisseminationCost exposes Algorithm 5's model-transfer count for the
// root's σ-accounting.
func DisseminationCost(tree *topology.Tree) CommStats { return disseminationCost(tree) }

// ChildClusterIndex maps member mi of upper-level cluster c to the index
// of the child cluster it leads (the ordering byLevelInput relies on).
func ChildClusterIndex(tree *topology.Tree, c *topology.Cluster, mi int) int {
	return childIndex(tree, c, mi)
}

// WireVerdict is one aggregation step's outcome in exportable form: the
// filter verdict RunHFL's emitter would have published, plus the step's
// communication cost. Slices are owned by the caller (copied out of the
// emitter's reused buffers).
type WireVerdict struct {
	Rule      string
	Kept      []int
	Clipped   []int
	Discarded []int
	Comm      CommStats
	// Excluded counts CBA-excluded proposals (top steps only).
	Excluded int
}

// WireAggregator owns the working memory RunHFL keeps per run — evaluation
// pool, aggregation scratch, filter emitter — and applies the engine's
// private aggregation functions to wire-collected vectors. Not safe for
// concurrent use (one protocol actor drives it, like the round loop).
type WireAggregator struct {
	cfg     *Config
	pool    *nn.EvalPool
	scratch *aggregate.Scratch
	fe      *filterEmitter
	verdict WireVerdict
}

// NewWireAggregator prepares the aggregation state for cfg. Telemetry
// counters register under the "node" engine label; cfg.OnFilter, when set,
// receives every verdict exactly as RunHFL's emitter would deliver it.
func NewWireAggregator(cfg *Config) *WireAggregator {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	w := &WireAggregator{
		cfg:     cfg,
		pool:    nn.NewEvalPool(cfg.modelSizes()...),
		scratch: aggregate.NewScratch(workers),
	}
	// The emitter must exist even without telemetry or a callback: the
	// verdict capture below is itself an OnFilter consumer.
	w.fe = newFilterEmitter(newInstruments(cfg.Telemetry, "node", len(cfg.Tree.Clusters)), w.capture, "node")
	w.fe.attach(w.scratch)
	return w
}

// capture copies the emitter's reused slices into the pending verdict and
// forwards the decision to the config's OnFilter consumer.
func (w *WireAggregator) capture(d telemetry.FilterDecision) {
	w.verdict.Rule = d.Rule
	w.verdict.Kept = append(w.verdict.Kept[:0], d.Kept...)
	w.verdict.Clipped = append(w.verdict.Clipped[:0], d.Clipped...)
	w.verdict.Discarded = append(w.verdict.Discarded[:0], d.Discarded...)
	if w.cfg.OnFilter != nil {
		w.cfg.OnFilter(d)
	}
}

// takeVerdict returns the captured verdict with fresh slices.
func (w *WireAggregator) takeVerdict(comm CommStats, excluded int) WireVerdict {
	v := WireVerdict{
		Rule:      w.verdict.Rule,
		Kept:      append([]int(nil), w.verdict.Kept...),
		Clipped:   append([]int(nil), w.verdict.Clipped...),
		Discarded: append([]int(nil), w.verdict.Discarded...),
		Comm:      comm,
		Excluded:  excluded,
	}
	return v
}

// AggregateCluster runs one cluster's partial aggregation exactly as
// RunHFL does: vecs/ids must be in cluster member order (already quorum-
// subsampled via ApplyQuorum), dst is the caller-owned destination buffer
// for BRA rules, and roundRNG is the round's derived stream. The returned
// vector is dst for BRA and a fresh vector for CBA.
func (w *WireAggregator) AggregateCluster(roundRNG *rng.RNG, c *topology.Cluster, vecs []tensor.Vector, ids []int, dst tensor.Vector, round int) (tensor.Vector, WireVerdict, error) {
	agg, comm, err := aggregateCluster(*w.cfg, roundRNG, c, vecs, ids, w.pool, dst, w.scratch, w.fe, round)
	if err != nil {
		return nil, WireVerdict{}, err
	}
	return agg, w.takeVerdict(comm, 0), nil
}

// AggregateTop forms the global model exactly as RunHFL does. partials is
// indexed by level-1 cluster (nil for clusters that contributed nothing);
// dst is the BRA destination buffer.
func (w *WireAggregator) AggregateTop(roundRNG *rng.RNG, partials []tensor.Vector, dst tensor.Vector, round int) (tensor.Vector, WireVerdict, error) {
	return w.AggregateTopBallots(roundRNG, partials, dst, round, nil)
}

// AggregateTopBallots is AggregateTop with wire-collected member ballots
// injected into the top consensus (the ABA ballot exchange): ballots.Rows
// is indexed by consensus member — the contributing level-1 leaders in
// cluster order — with nil rows for leaders whose ballot never arrived.
// With every row present the result is bit-identical to AggregateTop,
// because each remote ballot is the same bits the root would compute
// locally (ShardBallot); missing rows consume the protocol's fault budget.
func (w *WireAggregator) AggregateTopBallots(roundRNG *rng.RNG, partials []tensor.Vector, dst tensor.Vector, round int, ballots *consensus.BallotSet) (tensor.Vector, WireVerdict, error) {
	agg, comm, excluded, err := aggregateTop(*w.cfg, w.cfg.Tree, roundRNG, partials, w.pool, dst, w.scratch, w.fe, round, ballots)
	if err != nil {
		return nil, WireVerdict{}, err
	}
	return agg, w.takeVerdict(comm, excluded), nil
}

// GlobalNeedsBallots reports whether the configured global rule consumes
// externally collected ballots — i.e. whether the node engine should run
// the proposal/ballot wire exchange before AggregateTopBallots.
func GlobalNeedsBallots(cfg Config) bool {
	if !cfg.Global.IsCBA() {
		return false
	}
	_, ok := cfg.Global.CBA.(consensus.ABA)
	return ok
}

// ShardBallot computes one top-level member's validation-voting ballot over
// the proposals with the engine's shard validator and the global CBA's
// margin — the bits a remote leader ships back during the ABA ballot
// exchange. A leader process calling this for its own member index produces
// exactly the bits the root (or RunHFL) would compute centrally, which is
// what keeps the distributed run byte-identical to the core engine.
func (w *WireAggregator) ShardBallot(member int, proposals []tensor.Vector) []bool {
	ctx := &consensus.Context{
		Members:   len(proposals),
		Validator: shardValidator(*w.cfg, w.pool),
	}
	margin := 0.0
	if aba, ok := w.cfg.Global.CBA.(consensus.ABA); ok {
		margin = aba.Margin
	}
	return consensus.Ballot(ctx, member, margin, proposals)
}
