package core

import (
	"strings"
	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/trace"
)

// tracedJSONL runs one engine with a fresh tracer and returns the merged
// JSONL stream plus the chrome export, separated by a NUL.
func tracedJSONL(t *testing.T, shards int, run func(tr *trace.Tracer) error) string {
	t.Helper()
	tr := trace.NewTracer(shards, 0)
	if err := run(tr); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("traced run dropped %d spans", tr.Dropped())
	}
	var j, c strings.Builder
	if err := tr.WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&c); err != nil {
		t.Fatal(err)
	}
	return j.String() + "\x00" + c.String()
}

// goldenAcross pins the tentpole promise for one engine: the exported span
// stream is byte-identical for every (Workers, shards) combination.
func goldenAcross(t *testing.T, run func(tr *trace.Tracer, workers int) error) string {
	t.Helper()
	var want string
	for _, cell := range []struct{ workers, shards int }{
		{1, 1}, {4, 8}, {7, 32},
	} {
		got := tracedJSONL(t, cell.shards, func(tr *trace.Tracer) error {
			return run(tr, cell.workers)
		})
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d shards=%d produced a different span stream",
				cell.workers, cell.shards)
		}
	}
	return want
}

func TestHFLSpanStreamGolden(t *testing.T) {
	stream := goldenAcross(t, func(tr *trace.Tracer, workers int) error {
		cfg := buildScenario(t, 3, 2, 2, 3, 40, 2)
		cfg.Trace = tr
		cfg.Workers = workers
		_, err := RunHFL(cfg)
		return err
	})
	for _, name := range []string{`"name":"round"`, `"name":"train"`, `"name":"aggregate"`, `"name":"global"`, `"name":"phase-eval"`} {
		if !strings.Contains(stream, name) {
			t.Fatalf("HFL stream missing %s", name)
		}
	}
	// 2 poisoned devices + MultiKrum: the aggregate spans must carry verdicts.
	if !strings.Contains(stream, `"filtered":1`) {
		t.Fatal("HFL aggregate spans carry no filtered counts")
	}
}

func TestVanillaSpanStreamGolden(t *testing.T) {
	base := buildScenario(t, 3, 2, 2, 1, 40, 0)
	stream := goldenAcross(t, func(tr *trace.Tracer, workers int) error {
		_, err := RunVanilla(VanillaConfig{
			Rounds:     3,
			Local:      base.Local,
			Aggregator: aggregate.Mean{},
			ClientData: base.ClientData,
			TestData:   base.TestData,
			Seed:       7,
			EvalEvery:  1,
			Workers:    workers,
			Trace:      tr,
		})
		return err
	})
	if !strings.Contains(stream, `"name":"global"`) || !strings.Contains(stream, `"name":"train"`) {
		t.Fatal("vanilla stream missing expected spans")
	}
}

func TestGossipSpanStreamGolden(t *testing.T) {
	base := buildScenario(t, 3, 2, 2, 1, 40, 0)
	stream := goldenAcross(t, func(tr *trace.Tracer, workers int) error {
		_, err := RunGossip(GossipConfig{
			Rounds:     3,
			Local:      base.Local,
			Aggregator: aggregate.Mean{},
			ClientData: base.ClientData,
			TestData:   base.TestData,
			Seed:       9,
			EvalEvery:  1,
			Workers:    workers,
			Trace:      tr,
		})
		return err
	})
	if !strings.Contains(stream, `"name":"aggregate"`) {
		t.Fatal("gossip stream missing aggregate spans")
	}
}
