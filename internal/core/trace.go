package core

import (
	"abdhfl/internal/codec"
	"abdhfl/internal/trace"
)

// coreTracer emits causal spans for the logically-synchronous engines
// (hfl, vanilla, gossip). These engines have no virtual clock, so spans sit
// on a deterministic logical clock of unit-width windows: each round r
// occupies [base, base+3+B) where B is the tree's bottom level —
//
//	[base,       base+1)   training (all train spans share the window)
//	[base+1+k,   base+2+k) aggregation of level B-k, k = 0..B-1
//	[base+1+B,   base+2+B) global formation
//	[base+2+B,   base+3+B) evaluation
//
// — so exporter output orders causally and Perfetto renders the hierarchy,
// while staying byte-identical for every worker count (all emission happens
// on the round loop's goroutine, in device/cluster order).
//
// Parent links follow the consumer convention of internal/trace: train
// spans feed their bottom cluster's aggregate span, each level's aggregate
// feeds its parent cluster's (level 1 feeds the global span), and the
// global span feeds the round span. The core engines move models by
// function call, so there are no msg spans here — the pipeline engine
// covers the hop level.
//
// A nil *coreTracer (tracing off) makes every method a no-op.
type coreTracer struct {
	tr     *trace.Tracer
	bottom int   // tree bottom level; 0 for the flat engines
	bytes  int64 // wire size of one model transfer
	clock  float64
	base   float64
}

// wireBytesOf is the per-transfer wire charge spans report: codec wire
// bytes when a codec is set, the raw element count otherwise (matching the
// engines' volume accounting).
func wireBytesOf(c codec.Codec, dim int) int64 {
	if c == nil {
		return int64(dim)
	}
	return int64(c.WireBytes(dim))
}

func newCoreTracer(tr *trace.Tracer, bottom int, bytes int64) *coreTracer {
	if tr == nil {
		return nil
	}
	return &coreTracer{tr: tr, bottom: bottom, bytes: bytes}
}

func (ct *coreTracer) beginRound(round int) {
	if ct != nil {
		ct.base = ct.clock
	}
}

// train emits device dev's train span; cluster is its bottom cluster index.
func (ct *coreTracer) train(round, dev, cluster int) {
	if ct == nil {
		return
	}
	parent := trace.SpanID("global", round)
	if ct.bottom >= 1 {
		parent = trace.SpanID("aggregate", round, ct.bottom, cluster)
	}
	ct.tr.Record(trace.Span{
		ID:      trace.SpanID("train", round, dev),
		Parent:  parent,
		Name:    "train",
		Start:   ct.base,
		End:     ct.base + 1,
		Round:   round,
		Level:   ct.bottom,
		Cluster: cluster,
		Device:  dev,
		From:    -1,
		To:      -1,
	})
}

// trainGossip emits a gossip device's train span, feeding its own
// neighbourhood aggregation.
func (ct *coreTracer) trainGossip(round, dev int) {
	if ct == nil {
		return
	}
	ct.tr.Record(trace.Span{
		ID:      trace.SpanID("train", round, dev),
		Parent:  trace.SpanID("aggregate", round, 0, dev),
		Name:    "train",
		Start:   ct.base,
		End:     ct.base + 1,
		Round:   round,
		Level:   0,
		Cluster: dev,
		Device:  dev,
		From:    -1,
		To:      -1,
	})
}

// aggregate emits the partial aggregation span of cluster ci at level lvl;
// parentCi is its parent cluster's index at lvl-1 (ignored for lvl <= 1,
// whose consumer is the global span).
func (ct *coreTracer) aggregate(round, lvl, ci, parentCi int, rule string, kept, filtered int) {
	if ct == nil {
		return
	}
	parent := trace.SpanID("global", round)
	if lvl > 1 {
		parent = trace.SpanID("aggregate", round, lvl-1, parentCi)
	}
	start := ct.base + 1 + float64(ct.bottom-lvl)
	ct.tr.Record(trace.Span{
		ID:       trace.SpanID("aggregate", round, lvl, ci),
		Parent:   parent,
		Name:     "aggregate",
		Start:    start,
		End:      start + 1,
		Round:    round,
		Level:    lvl,
		Cluster:  ci,
		Device:   -1,
		From:     -1,
		To:       -1,
		Rule:     rule,
		Bytes:    ct.bytes,
		Kept:     kept,
		Filtered: filtered,
	})
}

// gossipAggregate emits device dev's neighbourhood aggregation span (gossip
// has no global model, so it feeds the round span directly).
func (ct *coreTracer) gossipAggregate(round, dev int, rule string, kept, filtered int) {
	if ct == nil {
		return
	}
	ct.tr.Record(trace.Span{
		ID:       trace.SpanID("aggregate", round, 0, dev),
		Parent:   trace.SpanID("round", round),
		Name:     "aggregate",
		Start:    ct.base + 1,
		End:      ct.base + 2,
		Round:    round,
		Level:    0,
		Cluster:  dev,
		Device:   dev,
		From:     -1,
		To:       -1,
		Rule:     rule,
		Bytes:    ct.bytes,
		Kept:     kept,
		Filtered: filtered,
	})
}

// global emits the round's global-formation span.
func (ct *coreTracer) global(round int, rule string, kept, filtered int) {
	if ct == nil {
		return
	}
	start := ct.base + 1 + float64(ct.bottom)
	ct.tr.Record(trace.Span{
		ID:       trace.SpanID("global", round),
		Parent:   trace.SpanID("round", round),
		Name:     "global",
		Start:    start,
		End:      start + 1,
		Round:    round,
		Level:    0,
		Cluster:  0,
		Device:   -1,
		From:     -1,
		To:       -1,
		Rule:     rule,
		Bytes:    ct.bytes,
		Kept:     kept,
		Filtered: filtered,
	})
}

// eval emits the round's evaluation phase span (only on evaluated rounds).
func (ct *coreTracer) eval(round int) {
	if ct == nil {
		return
	}
	start := ct.base + 2 + float64(ct.bottom)
	ct.tr.Record(trace.Span{
		ID:      trace.SpanID("phase-eval", round),
		Parent:  trace.SpanID("round", round),
		Name:    "phase-eval",
		Start:   start,
		End:     start + 1,
		Round:   round,
		Level:   -1,
		Cluster: -1,
		Device:  -1,
		From:    -1,
		To:      -1,
	})
}

// endRound emits the round's phase envelopes and the round span, then
// advances the logical clock to the next round's base.
func (ct *coreTracer) endRound(round int) {
	if ct == nil {
		return
	}
	end := ct.base + 3 + float64(ct.bottom)
	ct.tr.Record(trace.Span{
		ID:      trace.SpanID("phase-train", round),
		Parent:  trace.SpanID("round", round),
		Name:    "phase-train",
		Start:   ct.base,
		End:     ct.base + 1,
		Round:   round,
		Level:   -1,
		Cluster: -1,
		Device:  -1,
		From:    -1,
		To:      -1,
	})
	ct.tr.Record(trace.Span{
		ID:      trace.SpanID("phase-aggregate", round),
		Parent:  trace.SpanID("round", round),
		Name:    "phase-aggregate",
		Start:   ct.base + 1,
		End:     ct.base + 2 + float64(ct.bottom),
		Round:   round,
		Level:   -1,
		Cluster: -1,
		Device:  -1,
		From:    -1,
		To:      -1,
	})
	ct.tr.Record(trace.Span{
		ID:      trace.SpanID("round", round),
		Name:    "round",
		Start:   ct.base,
		End:     end,
		Round:   round,
		Level:   -1,
		Cluster: -1,
		Device:  -1,
		From:    -1,
		To:      -1,
	})
	ct.clock = end
}
