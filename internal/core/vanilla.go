package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/trace"
	"abdhfl/internal/tensor"
)

// VanillaConfig describes a classic star-topology FL run: one central server
// aggregates every client's update with a single rule. It is the baseline of
// the paper's Table V ("Vanilla FL is set with a central server as
// aggregation for all 64 clients").
type VanillaConfig struct {
	Rounds     int
	Local      nn.TrainConfig
	Hidden     []int
	Aggregator aggregate.Aggregator
	// TopCBA, when set, replaces the server's aggregation rule with a
	// consensus protocol over the submitted updates (any registered
	// protocol, e.g. "voting" or the randomized "aba"): contributing
	// clients score every update on their own data and the protocol's
	// decision becomes the round's global model — the star-topology
	// counterpart of the hierarchical engine's CBA levels.
	TopCBA consensus.Protocol

	ClientData []*dataset.Dataset
	TestData   *dataset.Dataset

	Byzantine   map[int]bool
	ModelAttack attack.ModelPoison

	Seed      uint64
	EvalEvery int
	Workers   int
	// Telemetry and OnFilter mirror Config's fields: metrics registry and
	// per-aggregation filter verdict callback (the star topology reports
	// everything at level 0 with client ids as contributor ids).
	Telemetry *telemetry.Registry
	OnFilter  func(telemetry.FilterDecision)
	// Cohort is the number of clients deterministically sampled to train per
	// round (cross-device FL's client sampling); zero (or >= the client
	// count) trains everyone. The server aggregates only the cohort's
	// updates, and the filter audit reports the sampled client ids.
	Cohort int
	// Codec mirrors Config.Codec: every client upload and the server's
	// broadcast cross one encode→decode hop, with the round's start model as
	// the Delta reference.
	Codec codec.Codec
	// Trace mirrors Config.Trace: causal spans on the logical clock (train
	// spans feed the single "global" server aggregation here).
	Trace *trace.Tracer
}

// Validate reports configuration errors.
func (c *VanillaConfig) Validate() error {
	if c.Rounds <= 0 {
		return errors.New("core: vanilla Rounds must be positive")
	}
	if len(c.ClientData) == 0 {
		return errors.New("core: vanilla needs client data")
	}
	if c.TestData == nil || c.TestData.Len() == 0 {
		return errors.New("core: vanilla TestData is empty")
	}
	if c.Aggregator == nil && c.TopCBA == nil {
		return errors.New("core: vanilla Aggregator is nil")
	}
	return nil
}

func (c *VanillaConfig) modelSizes() []int {
	hidden := c.Hidden
	if len(hidden) == 0 {
		hidden = []int{32}
	}
	sizes := []int{dataset.Dim}
	sizes = append(sizes, hidden...)
	return append(sizes, dataset.NumClasses)
}

// RunVanilla executes the star-topology baseline.
func RunVanilla(cfg VanillaConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	sizes := cfg.modelSizes()
	globalParams := nn.New(root.Derive("init"), sizes...).Params()
	evalModel := nn.NewShaped(sizes...)

	clients := len(cfg.ClientData)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	hcfg := Config{ClientData: cfg.ClientData, Local: cfg.Local, Byzantine: cfg.Byzantine, ModelAttack: cfg.ModelAttack}
	var evalPool *nn.EvalPool
	if cfg.TopCBA != nil {
		evalPool = nn.NewEvalPool(sizes...)
	}

	res := &Result{}
	updates := make([]tensor.Vector, clients)
	trainer := newLocalTrainer(sizes, workers, clients)
	// Aggregation memory persists across rounds: the scratch keeps the rule's
	// internal buffers warm, and the double-buffered destination lets round r
	// write while round r-1's result is still the read-only training start.
	aggScratch := aggregate.NewScratch(workers)
	codecScratch := codec.NewScratch()
	ins := newInstruments(cfg.Telemetry, "vanilla", 1)
	ins.codecInfo(cfg.Codec, len(globalParams))
	fe := newFilterEmitter(ins, cfg.OnFilter, "vanilla")
	fe.attach(aggScratch)
	ct := newCoreTracer(cfg.Trace, 0, wireBytesOf(cfg.Codec, len(globalParams)))
	if ct != nil && fe == nil {
		fe = &filterEmitter{engine: "vanilla"}
		fe.attach(aggScratch)
	}
	var globalBufs [2]tensor.Vector
	for round := 0; round < cfg.Rounds; round++ {
		roundRNG := root.Derive(fmt.Sprintf("round-%d", round))
		ct.beginRound(round)
		var tRound, tPhase time.Time
		if ins.enabled() {
			tRound = time.Now()
			tPhase = tRound
		}
		trainer.round(hcfg, globalParams, updates, drawVanillaSkip(cfg, roundRNG, clients), roundRNG)
		res.TrainerActivations += len(trainer.active)
		if cfg.ModelAttack != nil {
			applyModelAttack(hcfg, updates, globalParams, roundRNG.Derive("attack"))
		}
		if ct != nil {
			for id, u := range updates {
				if u != nil {
					ct.train(round, id, 0)
				}
			}
		}
		// Client→server uplink: each submitted update crosses one codec hop.
		if cfg.Codec != nil {
			codecScratch.Ref = globalParams
			for id, u := range updates {
				if u == nil {
					continue
				}
				if _, err := codec.Transcode(cfg.Codec, u, codecScratch); err != nil {
					return nil, fmt.Errorf("core: vanilla round %d client %d codec: %w", round, id, err)
				}
			}
		}
		if ins.enabled() {
			ins.observePhase(phaseTrain, time.Since(tPhase))
			tPhase = time.Now()
		}
		if globalBufs[round%2] == nil {
			globalBufs[round%2] = tensor.NewVector(len(globalParams))
		}
		agg := globalBufs[round%2]
		inputs := updates
		var ids []int
		if cfg.Cohort > 0 && cfg.Cohort < clients {
			// Aggregate only the cohort's updates, reporting the sampled
			// client ids to the filter audit.
			vecs := make([]tensor.Vector, 0, cfg.Cohort)
			ids = make([]int, 0, cfg.Cohort)
			for id, u := range updates {
				if u != nil {
					vecs = append(vecs, u)
					ids = append(ids, id)
				}
			}
			inputs = vecs
		}
		var roundComm CommStats
		if cfg.TopCBA != nil {
			// Consensus at the server: contributing clients are the members,
			// each scoring every update on its own shard.
			if ids == nil {
				ids = make([]int, len(inputs))
				for i := range ids {
					ids[i] = i
				}
			}
			ctx := &consensus.Context{
				Members:   len(inputs),
				Byzantine: protocolByzantine(hcfg, ids),
				Validator: localValidator(hcfg, ids, evalPool),
				Rand:      roundRNG.Derive("cba-top"),
				Workers:   workers,
				Round:     round,
			}
			out, st, err := cfg.TopCBA.Agree(ctx, inputs)
			if err != nil {
				return nil, fmt.Errorf("core: vanilla round %d: %w", round, err)
			}
			copy(agg, out)
			fe.emitConsensus(0, 0, round, ids, cfg.TopCBA.Name(), st)
			if ct != nil {
				kept, filtered := fe.verdictCounts()
				ct.global(round, cfg.TopCBA.Name(), kept, filtered)
			}
			roundComm.ModelTransfers = st.ModelTransfers + len(inputs)
			roundComm.ScalarMessages = st.Messages - st.ModelTransfers
		} else {
			if err := cfg.Aggregator.AggregateInto(agg, aggScratch, inputs); err != nil {
				return nil, fmt.Errorf("core: vanilla round %d: %w", round, err)
			}
			// Without cohort sampling there is no churn in the star baseline,
			// so update positions are client ids and ids stays nil.
			fe.emitAudit(0, 0, round, ids)
			if ct != nil {
				kept, filtered := fe.verdictCounts()
				ct.global(round, cfg.Aggregator.Name(), kept, filtered)
			}
			// Star topology: every participant uploads, the server broadcasts
			// back.
			roundComm.ModelTransfers = 2 * len(inputs)
		}
		// Server→client downlink: the broadcast global crosses one codec hop
		// (the previous global, still intact in the other buffer, is the
		// Delta reference every client holds).
		if cfg.Codec != nil {
			codecScratch.Ref = globalParams
			if _, err := codec.Transcode(cfg.Codec, agg, codecScratch); err != nil {
				return nil, fmt.Errorf("core: vanilla round %d broadcast codec: %w", round, err)
			}
			roundComm.WireBytes = int64(roundComm.ModelTransfers) * int64(cfg.Codec.WireBytes(len(agg)))
		}
		globalParams = agg
		res.Comm.Add(roundComm)
		if ins.enabled() {
			ins.observePhase(phaseAggregate, time.Since(tPhase))
			tPhase = time.Now()
		}

		if (round+1)%evalEvery == 0 || round == cfg.Rounds-1 {
			evalModel.SetParams(globalParams)
			acc, loss := nn.Evaluate(evalModel, cfg.TestData, workers)
			res.Curve = append(res.Curve, RoundStat{Round: round + 1, Accuracy: acc, Loss: loss})
			ins.evalDone(acc, loss)
			ct.eval(round)
			if ins.enabled() {
				ins.observePhase(phaseEval, time.Since(tPhase))
			}
		}
		if ins.enabled() {
			ins.roundDone(time.Since(tRound), roundComm)
		}
		ct.endRound(round)
	}
	if len(res.Curve) > 0 {
		res.FinalAccuracy = res.Curve[len(res.Curve)-1].Accuracy
	}
	res.FinalParams = globalParams
	res.TrainerBuffers = trainer.allocated
	return res, nil
}

// drawVanillaSkip benches every client outside the round's deterministic
// k-cohort (nil when cohort sampling is off — everyone trains).
func drawVanillaSkip(cfg VanillaConfig, roundRNG *rng.RNG, clients int) map[int]bool {
	if cfg.Cohort <= 0 || cfg.Cohort >= clients {
		return nil
	}
	r := roundRNG.Derive("cohort")
	pick := make([]int, cfg.Cohort)
	r.ChoiceInto(pick, clients, make([]int, clients))
	skip := make(map[int]bool, clients-cfg.Cohort)
	in := make([]bool, clients)
	for _, p := range pick {
		in[p] = true
	}
	for id := 0; id < clients; id++ {
		if !in[id] {
			skip[id] = true
		}
	}
	return skip
}
