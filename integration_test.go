package abdhfl

import (
	"testing"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/consensus"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/realtime"
)

// Integration tests: the three engines (deterministic round engine, DES
// pipeline, realtime goroutines) run the same materialised scenario and must
// all learn — the protocol's behaviour should not depend on which execution
// substrate carries it.

func TestAllEnginesLearnSameScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := Scenario{
		Levels: 3, ClusterSize: 2, TopNodes: 2,
		Attack:            AttackType1,
		MaliciousFraction: 0.25,
		Rounds:            20,
		SamplesPerClient:  80,
		TestSamples:       400,
		ValidationSamples: 300,
		EvalEvery:         20,
	}.WithDefaults()
	m, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}

	const floor = 0.4

	roundRes, err := m.RunHFL(1)
	if err != nil {
		t.Fatal(err)
	}
	if roundRes.FinalAccuracy < floor {
		t.Fatalf("round engine accuracy = %v", roundRes.FinalAccuracy)
	}

	pipeRes, err := m.RunPipeline(1, 0, pipeline.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if pipeRes.FinalAccuracy < floor {
		t.Fatalf("pipeline engine accuracy = %v", pipeRes.FinalAccuracy)
	}

	bra, err := aggregate.ByName(s.Aggregator)
	if err != nil {
		t.Fatal(err)
	}
	voting := consensus.Voting{}
	rtRes, err := realtime.Run(realtime.Config{
		Tree:             m.Tree,
		Rounds:           s.Rounds,
		FlagLevel:        0,
		Local:            m.Local,
		PartialBRA:       bra,
		TopVoting:        &voting,
		ClientData:       m.Shards,
		TestData:         m.TestData,
		ValidationShards: m.ValidationShards,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rtRes.FinalAccuracy < floor {
		t.Fatalf("realtime engine accuracy = %v", rtRes.FinalAccuracy)
	}
}

func TestRoundEngineBeatsMeanBaselineUnderHeavyPoisoning(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The repository's headline claim in one test: at 50% Type I poisoning
	// the hierarchical system stays near its clean accuracy while mean-
	// aggregated vanilla FL collapses to chance.
	s := Scenario{
		Attack:            AttackType1,
		MaliciousFraction: 0.50,
		Rounds:            15,
		SamplesPerClient:  100,
		TestSamples:       500,
		EvalEvery:         15,
	}.WithDefaults()
	m, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	hfl, err := m.RunHFL(1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := s
	s2.Aggregator = "mean"
	m2, err := Build(s2)
	if err != nil {
		t.Fatal(err)
	}
	van, err := m2.RunVanilla(1)
	if err != nil {
		t.Fatal(err)
	}
	if hfl.FinalAccuracy < 0.5 {
		t.Fatalf("ABD-HFL accuracy = %v", hfl.FinalAccuracy)
	}
	if van.FinalAccuracy > 0.3 {
		t.Fatalf("mean vanilla did not collapse: %v", van.FinalAccuracy)
	}
}

func TestAllProtocolsAtTopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, proto := range consensus.Names() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			s := Scenario{
				Levels: 3, ClusterSize: 2, TopNodes: 4,
				TopProtocol:       proto,
				Rounds:            5,
				SamplesPerClient:  60,
				TestSamples:       300,
				ValidationSamples: 200,
				EvalEvery:         5,
			}.WithDefaults()
			res, err := Run(s)
			if err != nil {
				t.Fatalf("%s: %v", proto, err)
			}
			if res.FinalAccuracy <= 0.1 {
				t.Fatalf("%s: accuracy %v", proto, res.FinalAccuracy)
			}
		})
	}
}

func TestAllAggregatorsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, name := range aggregate.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := Scenario{
				Levels: 3, ClusterSize: 4, TopNodes: 2,
				Aggregator:        name,
				Attack:            AttackType1,
				MaliciousFraction: 0.1,
				Rounds:            4,
				SamplesPerClient:  60,
				TestSamples:       300,
				ValidationSamples: 200,
				EvalEvery:         4,
			}.WithDefaults()
			res, err := Run(s)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.FinalAccuracy <= 0.1 {
				t.Fatalf("%s: accuracy %v", name, res.FinalAccuracy)
			}
		})
	}
}
