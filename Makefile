GO ?= go

.PHONY: build test race vet verify verify-scale verify-codec verify-trace verify-transport verify-consensus bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the parallel evaluation and consensus-validation fan-out
# under the race detector, plus the realtime engine's crash/churn fault
# regressions (a crashed member must never deadlock its leader) and the
# chaostest invariant sweeps; the engines must stay clean for every worker
# count and under every fault plan.
race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything must pass before a commit.
verify: vet build race verify-codec verify-trace verify-transport verify-consensus

# verify-scale gates the million-device layer: shard-count and rerun
# invariance of the sharded event engine, lazy≡eager state equality, cohort
# accounting (core + scale engine), all under -race, then a one-shot
# devices/sec benchmark smoke at 100k devices.
verify-scale:
	$(GO) test -race -run 'Shard|ParallelFold|EventPool|PeakQueue|Cohort|Scale|Stream|DeriveN|ChoiceInto' \
		./internal/simnet ./internal/rng ./internal/telemetry ./internal/core ./internal/experiments
	$(GO) test -run '^$$' -bench ScaleDevicesPerSec -benchtime 1x ./internal/experiments

# verify-codec gates the update-codec layer: encode→decode round-trips and
# corrupt-payload rejection, steady-state zero-allocation checks, golden
# Identity bit-equivalence on every engine plus worker-count invariance of
# the lossy codecs, and the bandwidth model's latency/fault-stream
# invariance, all under -race.
verify-codec:
	$(GO) test -race -run 'Codec|RoundTrip|Alloc|Corrupt|NonFinite|ByName|Transcode|Bandwidth' \
		./internal/codec ./internal/simnet ./internal/core ./internal/pipeline ./internal/realtime ./internal/experiments

# verify-trace gates the causal-span layer: shard-merge and worker-count
# byte-identity of the exported streams on every engine, concurrent
# recording under -race, Chrome/Perfetto JSON schema sanity, critical-path
# invariants, the flight-recorder ring, and the zero-allocation hooks.
verify-trace:
	$(GO) test -race -run 'Span|Trace|Chrome|CriticalPath|Flight|Shard' \
		./internal/trace ./internal/core ./internal/pipeline ./internal/realtime \
		./internal/experiments ./internal/chaostest

# verify-transport gates the real-wire layer: a build, the frame fuzz
# corpus replayed as regular tests, the frame/stall/dupe/hostile-input
# suites and the distributed≡core plus loopback≡TCP conformance goldens
# under -race, then the multi-process abdhfl-node cluster smoke (1 root,
# 2 leaders, 4 devices over real sockets with a fault plan active).
verify-transport:
	$(GO) build -o /dev/null ./cmd/abdhfl-node
	$(GO) test -race -run 'Frame|Stall|Dupe|Concurrent|Hostility|Lifecycle|Restart|Fuzz' ./internal/transport
	$(GO) test -race -run 'Conformance|MatchesCore' ./internal/node
	$(GO) test -run ClusterSmoke ./cmd/abdhfl-node

# verify-consensus gates the randomized-agreement layer: the
# adversarial-schedule ABA conformance suite (agreement/validity/termination
# over 240 seeds and three membership sizes), worker-count and transcript
# invariance, committee-rotation determinism, the registry round-trip, the
# chaostest ABA sweeps with the zero-fault ABA≡voting golden, the node
# ballot-exchange conformance (distributed≡core, loopback≡TCP under
# drop+dup), all under -race — then the 7-process abdhfl-node smoke with
# ABA deciding at the root while a drop+duplicate plan hits the ballot
# frames.
verify-consensus:
	$(GO) test -race -run 'ABA|CommitteeForRound|RotatingCommittee|NamesRoundTrip|ConsensusLatency' \
		./internal/consensus ./internal/chaostest ./internal/node ./internal/experiments
	$(GO) test -run ClusterSmokeABA ./cmd/abdhfl-node

# bench regenerates the tier-1 benchmark numbers (see BENCH_*.json).
bench:
	$(GO) run ./cmd/abdhfl-bench

clean:
	$(GO) clean ./...
