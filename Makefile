GO ?= go

.PHONY: build test race vet verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the parallel evaluation and consensus-validation fan-out
# under the race detector; the engines must stay clean for every worker count.
race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything must pass before a commit.
verify: vet build race

# bench regenerates the tier-1 benchmark numbers (see BENCH_*.json).
bench:
	$(GO) run ./cmd/abdhfl-bench

clean:
	$(GO) clean ./...
