package abdhfl_test

import (
	"fmt"
	"os"

	"abdhfl"
)

// The Theorem 2 tolerance bound of the paper's evaluation topology: a
// 3-level tree with γ1 = γ2 = 25% tolerates 57.8125% Byzantine clients at
// the bottom.
func ExampleTheoreticalBound() {
	bound := abdhfl.TheoreticalBound(abdhfl.Scenario{})
	fmt.Printf("%.4f%%\n", 100*bound)
	// Output: 57.8125%
}

// Zero-valued fields are filled with the paper's Appendix D settings.
func ExampleScenario_WithDefaults() {
	s := abdhfl.Scenario{MaliciousFraction: 0.5}.WithDefaults()
	fmt.Println(s.Clients(), "clients")
	fmt.Println(s.Aggregator, "+", s.TopProtocol)
	fmt.Println(s.Rounds, "rounds,", s.LocalIters, "local iterations")
	// Output:
	// 64 clients
	// multi-krum + voting
	// 200 rounds, 5 local iterations
}

// Scenarios round-trip through JSON for reproducible experiment configs.
func ExampleWriteScenario() {
	s := abdhfl.Scenario{
		Attack:            abdhfl.AttackType1,
		MaliciousFraction: 0.5,
		Rounds:            60,
	}
	_ = abdhfl.WriteScenario(os.Stdout, s)
	// Output:
	// {
	//   "attack": "type1",
	//   "malicious_fraction": 0.5,
	//   "rounds": 60
	// }
}
