// Package abdhfl is the public entry point of the ABD-HFL reproduction: an
// asynchronous, Byzantine-resistant, decentralized hierarchical federated
// learning simulator (An, Potop-Butucaru, Tixeuil, Fdida — hal-04627430).
//
// A Scenario describes a complete experiment — topology, data distribution,
// attack, aggregation rules — in the vocabulary of the paper's evaluation
// section; Build materialises it (datasets, tree, poisoning) and the Run*
// functions execute the hierarchical run, the vanilla star-topology
// baseline, or the asynchronous pipeline workflow. The cmd/ tools,
// examples/, and the benchmark harness are all thin layers over this
// package.
package abdhfl

import (
	"fmt"

	"abdhfl/internal/aggregate"
	"abdhfl/internal/attack"
	"abdhfl/internal/codec"
	"abdhfl/internal/consensus"
	"abdhfl/internal/core"
	"abdhfl/internal/dataset"
	"abdhfl/internal/nn"
	"abdhfl/internal/pipeline"
	"abdhfl/internal/rng"
	"abdhfl/internal/telemetry"
	"abdhfl/internal/topology"
	"abdhfl/internal/trace"
)

// Distribution selects how training data is split across clients.
type Distribution string

// Supported distributions.
const (
	// DistIID shuffles and splits the pool equally (the paper's IID case).
	DistIID Distribution = "iid"
	// DistNonIID gives each client exactly two labels (the paper's extreme
	// non-IID case).
	DistNonIID Distribution = "noniid"
	// DistDirichlet skews label proportions by a symmetric Dirichlet draw
	// (extension beyond the paper).
	DistDirichlet Distribution = "dirichlet"
)

// Attack selects the Byzantine behaviour of malicious clients.
type Attack string

// Supported attacks (Table I).
const (
	AttackNone Attack = "none"
	// AttackType1 sets all training labels to 9 (data poisoning Type I).
	AttackType1 Attack = "type1"
	// AttackType2 randomises training labels (data poisoning Type II).
	AttackType2 Attack = "type2"
	// AttackBackdoor implants a trigger patch mapped to class 0.
	AttackBackdoor Attack = "backdoor"
	// AttackSignFlip submits negated, amplified model updates.
	AttackSignFlip Attack = "signflip"
	// AttackNoise submits updates with large Gaussian noise.
	AttackNoise Attack = "noise"
	// AttackALE is A-Little-Is-Enough (mean - z*std).
	AttackALE Attack = "ale"
	// AttackIPM is Inner-Product Manipulation (-ε*mean).
	AttackIPM Attack = "ipm"
)

// Placement selects where malicious devices sit in the tree.
type Placement string

// Supported placements.
const (
	// PlacePrefix marks the lowest client ids malicious — the paper's
	// evaluation setting ("clients are ordered by client id").
	PlacePrefix Placement = "prefix"
	// PlaceRandom scatters malicious clients uniformly.
	PlaceRandom Placement = "random"
	// PlaceAdversarial uses the worst-case bound-attaining placement of the
	// tolerance theory (Theorem 2).
	PlaceAdversarial Placement = "adversarial"
)

// Topology selects the tree-construction model.
type Topology string

// Supported topologies.
const (
	// TopologyECSM is the Equal Cluster Size Model of the evaluation.
	TopologyECSM Topology = "ecsm"
	// TopologyACSM is the Arbitrary Cluster Size Model of Appendix C:
	// random cluster sizes in [ACSMMinCluster, ACSMMaxCluster] over
	// ACSMDevices devices.
	TopologyACSM Topology = "acsm"
)

// Scenario is a complete experiment description. Zero fields are filled by
// WithDefaults; the defaults follow the paper's Appendix D (Table VII) with
// a reduced dataset size so a full Table V regeneration stays laptop-scale.
type Scenario struct {
	// Topology selects ECSM (default) or ACSM tree construction.
	Topology Topology
	// ECSM shape: Levels tiers, ClusterSize members per cluster, TopNodes at
	// the top. The paper uses 3 / 4 / 4 (64 clients).
	Levels, ClusterSize, TopNodes int
	// ACSM shape (Topology == TopologyACSM): total devices and the random
	// per-cluster size range.
	ACSMDevices, ACSMMinCluster, ACSMMaxCluster int

	Distribution   Distribution
	DirichletAlpha float64

	Attack            Attack
	MaliciousFraction float64
	Placement         Placement

	// Learning settings.
	Rounds           int
	LocalIters       int
	BatchSize        int
	LearningRate     float64
	SamplesPerClient int
	TestSamples      int
	// ValidationSamples is the pool split across top nodes for voting.
	ValidationSamples int

	// Aggregator is the BRA registry name used at intermediate levels (and
	// by the vanilla baseline): "multi-krum", "median", ...
	Aggregator string
	// TopProtocol is the CBA used at the top — any consensus registry name
	// ("voting", "committee", "rotating-committee", "approx-agreement",
	// "pbft", "aba"), or "" for a BRA top.
	TopProtocol string
	// Scheme (1-4, Table III) overrides the Aggregator/TopProtocol split;
	// zero keeps the explicit configuration (which matches Scheme 1 with
	// the defaults).
	Scheme int

	Quorum    float64
	EvalEvery int
	Seed      uint64
	Workers   int
	// Codec selects the update codec by registry name ("identity", "int8",
	// "topk", "delta"); every model transfer then crosses one encode→decode
	// hop and wire bytes are accounted. Empty — the default — runs the
	// uncompressed model stream exactly as before.
	Codec string
	// Cohort is the number of devices deterministically sampled to train per
	// bottom cluster per round (cross-device client sampling); zero — the
	// default — trains every device, reproducing the paper's full-participation
	// evaluation bit-for-bit.
	Cohort int
}

// WithDefaults returns a copy of s with zero fields replaced by the paper's
// evaluation settings (reduced sample counts noted in DESIGN.md).
func (s Scenario) WithDefaults() Scenario {
	if s.Topology == "" {
		s.Topology = TopologyECSM
	}
	if s.ACSMDevices == 0 {
		s.ACSMDevices = 60
	}
	if s.ACSMMinCluster == 0 {
		s.ACSMMinCluster = 3
	}
	if s.ACSMMaxCluster == 0 {
		s.ACSMMaxCluster = 6
	}
	if s.Levels == 0 {
		s.Levels = 3
	}
	if s.ClusterSize == 0 {
		s.ClusterSize = 4
	}
	if s.TopNodes == 0 {
		s.TopNodes = 4
	}
	if s.Distribution == "" {
		s.Distribution = DistIID
	}
	if s.DirichletAlpha == 0 {
		s.DirichletAlpha = 0.5
	}
	if s.Attack == "" {
		s.Attack = AttackNone
	}
	if s.Placement == "" {
		s.Placement = PlacePrefix
	}
	if s.Rounds == 0 {
		s.Rounds = 200
	}
	if s.LocalIters == 0 {
		s.LocalIters = 5
	}
	if s.BatchSize == 0 {
		s.BatchSize = 32
	}
	if s.LearningRate == 0 {
		s.LearningRate = 0.1
	}
	if s.SamplesPerClient == 0 {
		s.SamplesPerClient = 300
	}
	if s.TestSamples == 0 {
		s.TestSamples = 2000
	}
	if s.ValidationSamples == 0 {
		s.ValidationSamples = 1000
	}
	if s.Aggregator == "" {
		s.Aggregator = "multi-krum"
	}
	if s.TopProtocol == "" && s.Scheme == 0 {
		s.TopProtocol = "voting"
	}
	if s.EvalEvery == 0 {
		s.EvalEvery = 5
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Clients returns the number of bottom-level devices the scenario implies.
func (s Scenario) Clients() int {
	if s.Topology == TopologyACSM {
		return s.ACSMDevices
	}
	n := s.TopNodes
	for l := 1; l < s.Levels-1; l++ {
		n *= s.ClusterSize
	}
	return n * s.ClusterSize
}

// Materials is a materialised scenario: everything the engines consume.
type Materials struct {
	Scenario Scenario
	Tree     *topology.Tree
	// Shards are the per-client training sets with data poisoning already
	// applied to Byzantine clients.
	Shards           []*dataset.Dataset
	TestData         *dataset.Dataset
	ValidationShards []*dataset.Dataset
	Byzantine        map[int]bool
	ModelAttack      attack.ModelPoison
	Local            nn.TrainConfig
	PartialRule      core.LevelRule
	GlobalRule       core.LevelRule
	// Telemetry, when set before a Run* call, is passed through to the
	// engines so counters, gauges, and histograms accumulate there (see
	// internal/telemetry); OnFilter likewise receives every aggregation's
	// per-(level, cluster, round) filter verdict. Both default to off.
	Telemetry *telemetry.Registry
	OnFilter  func(telemetry.FilterDecision)
	// Trace, when set before a Run* call, receives the engines' causal spans
	// (see internal/trace); nil disables emission entirely.
	Trace *trace.Tracer
	// Codec is the resolved update codec (nil when Scenario.Codec is empty),
	// passed to every engine the materials drive.
	Codec codec.Codec
}

// Build materialises a scenario deterministically from its seed.
func Build(s Scenario) (*Materials, error) {
	s = s.WithDefaults()
	r := rng.New(s.Seed)
	var tree *topology.Tree
	var err error
	switch s.Topology {
	case TopologyECSM:
		tree, err = topology.NewECSM(s.Levels, s.ClusterSize, s.TopNodes)
	case TopologyACSM:
		tree, err = topology.NewACSM(r.Derive("tree"), s.ACSMDevices, s.ACSMMinCluster, s.ACSMMaxCluster, s.TopNodes)
	default:
		err = fmt.Errorf("abdhfl: unknown topology %q", s.Topology)
	}
	if err != nil {
		return nil, err
	}
	devices := tree.NumDevices()
	gen := dataset.DefaultGen()
	pool := dataset.Generate(r.Derive("train"), devices*s.SamplesPerClient, gen)

	var shards []*dataset.Dataset
	switch s.Distribution {
	case DistIID:
		shards = dataset.PartitionIID(r.Derive("split"), pool, devices)
	case DistNonIID:
		shards = dataset.PartitionNonIID(r.Derive("split"), pool, devices, 2)
	case DistDirichlet:
		shards = dataset.PartitionDirichlet(r.Derive("split"), pool, devices, s.DirichletAlpha)
	default:
		return nil, fmt.Errorf("abdhfl: unknown distribution %q", s.Distribution)
	}

	test := dataset.Generate(r.Derive("test"), s.TestSamples, gen)
	valPool := dataset.Generate(r.Derive("validation"), s.ValidationSamples, gen)
	valShards := dataset.PartitionIID(r.Derive("valsplit"), valPool, tree.Top().Size())

	m := &Materials{
		Scenario:         s,
		Tree:             tree,
		Shards:           shards,
		TestData:         test,
		ValidationShards: valShards,
		Local: nn.TrainConfig{
			LearningRate: s.LearningRate,
			BatchSize:    s.BatchSize,
			Iterations:   s.LocalIters,
		},
	}
	if err := m.placeByzantine(r.Derive("place")); err != nil {
		return nil, err
	}
	if err := m.applyAttack(r.Derive("poison")); err != nil {
		return nil, err
	}
	if err := m.wireRules(); err != nil {
		return nil, err
	}
	if s.Codec != "" {
		if m.Codec, err = codec.ByName(s.Codec); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Materials) placeByzantine(r *rng.RNG) error {
	s := m.Scenario
	if s.MaliciousFraction < 0 || s.MaliciousFraction > 1 {
		return fmt.Errorf("abdhfl: malicious fraction %v out of [0,1]", s.MaliciousFraction)
	}
	devices := m.Tree.NumDevices()
	k := int(s.MaliciousFraction * float64(devices))
	switch s.Placement {
	case PlacePrefix:
		m.Byzantine = topology.PrefixPlacement(m.Tree, k)
	case PlaceRandom:
		m.Byzantine = map[int]bool{}
		for _, id := range r.Choice(devices, k) {
			m.Byzantine[id] = true
		}
	case PlaceAdversarial:
		// Start from the bound-attaining placement of Theorem 2 and trim or
		// top up (with low ids, prefix-style) to exactly k devices.
		tol := topology.Tolerance{Gamma1: 0.25, Gamma2: 0.25}
		full := tol.AdversarialPlacement(m.Tree)
		m.Byzantine = map[int]bool{}
		for id := 0; id < devices && len(m.Byzantine) < k; id++ {
			if full[id] {
				m.Byzantine[id] = true
			}
		}
		for id := 0; id < devices && len(m.Byzantine) < k; id++ {
			m.Byzantine[id] = true
		}
	default:
		return fmt.Errorf("abdhfl: unknown placement %q", s.Placement)
	}
	return nil
}

func (m *Materials) applyAttack(r *rng.RNG) error {
	var data attack.DataPoison
	switch m.Scenario.Attack {
	case AttackNone:
		return nil
	case AttackType1:
		data = attack.LabelFlipAll{Target: 9}
	case AttackType2:
		data = attack.LabelFlipRandom{}
	case AttackBackdoor:
		data = attack.DefaultBackdoor()
	case AttackSignFlip:
		m.ModelAttack = attack.SignFlip{Scale: 3}
		return nil
	case AttackNoise:
		m.ModelAttack = attack.GaussianNoise{Stddev: 2}
		return nil
	case AttackALE:
		m.ModelAttack = attack.ALE{Z: 1.2}
		return nil
	case AttackIPM:
		m.ModelAttack = attack.IPM{Epsilon: 0.8}
		return nil
	default:
		return fmt.Errorf("abdhfl: unknown attack %q", m.Scenario.Attack)
	}
	for id := range m.Byzantine {
		data.Poison(r.Derive(fmt.Sprintf("dev-%d", id)), m.Shards[id])
	}
	return nil
}

func (m *Materials) wireRules() error {
	s := m.Scenario
	bra, err := aggregate.ByName(s.Aggregator)
	if err != nil {
		return err
	}
	var cba consensus.Protocol
	if s.TopProtocol != "" {
		cba, err = consensus.ByName(s.TopProtocol)
		if err != nil {
			return err
		}
	}
	if s.Scheme != 0 {
		if cba == nil {
			cba = consensus.Voting{}
		}
		partial, global, err := core.Scheme(s.Scheme).Rules(bra, cba)
		if err != nil {
			return err
		}
		m.PartialRule, m.GlobalRule = partial, global
		return nil
	}
	m.PartialRule = core.LevelRule{BRA: bra}
	if cba != nil {
		m.GlobalRule = core.LevelRule{CBA: cba}
	} else {
		m.GlobalRule = core.LevelRule{BRA: bra}
	}
	return nil
}

// CoreConfig assembles the round-engine configuration for the given engine
// seed, exposed so callers can tweak engine-level knobs (churn, quorum,
// workers) the Scenario vocabulary does not cover before calling
// core.RunHFL directly.
func (m *Materials) CoreConfig(seed uint64) core.Config {
	return core.Config{
		Tree:             m.Tree,
		Rounds:           m.Scenario.Rounds,
		Local:            m.Local,
		Partial:          m.PartialRule,
		Global:           m.GlobalRule,
		ClientData:       m.Shards,
		TestData:         m.TestData,
		ValidationShards: m.ValidationShards,
		Byzantine:        m.Byzantine,
		ModelAttack:      m.ModelAttack,
		Seed:             seed,
		EvalEvery:        m.Scenario.EvalEvery,
		Workers:          m.Scenario.Workers,
		Quorum:           m.Scenario.Quorum,
		Cohort:           m.Scenario.Cohort,
		Telemetry:        m.Telemetry,
		OnFilter:         m.OnFilter,
		Trace:            m.Trace,
		Codec:            m.Codec,
	}
}

// RunHFL executes the ABD-HFL round engine on the materials with the given
// engine seed (datasets stay fixed; the engine seed varies repeats).
func (m *Materials) RunHFL(seed uint64) (*core.Result, error) {
	return core.RunHFL(m.CoreConfig(seed))
}

// RunVanilla executes the star-topology baseline with the scenario's BRA
// rule as the central aggregator.
func (m *Materials) RunVanilla(seed uint64) (*core.Result, error) {
	bra, err := aggregate.ByName(m.Scenario.Aggregator)
	if err != nil {
		return nil, err
	}
	return core.RunVanilla(core.VanillaConfig{
		Rounds:      m.Scenario.Rounds,
		Local:       m.Local,
		Aggregator:  bra,
		ClientData:  m.Shards,
		TestData:    m.TestData,
		Byzantine:   m.Byzantine,
		ModelAttack: m.ModelAttack,
		Seed:        seed,
		EvalEvery:   m.Scenario.EvalEvery,
		Workers:     m.Scenario.Workers,
		Cohort:      m.Scenario.Cohort,
		Telemetry:   m.Telemetry,
		OnFilter:    m.OnFilter,
		Trace:       m.Trace,
		Codec:       m.Codec,
	})
}

// PipelineConfig assembles the asynchronous-engine configuration for the
// given flag level, exposed (like CoreConfig) so callers can tweak
// pipeline-only knobs before calling pipeline.Run directly.
func (m *Materials) PipelineConfig(seed uint64, flagLevel int, timing pipeline.Timing) (pipeline.Config, error) {
	bra, err := aggregate.ByName(m.Scenario.Aggregator)
	if err != nil {
		return pipeline.Config{}, err
	}
	voting := consensus.Voting{}
	cfg := pipeline.Config{
		Tree:             m.Tree,
		Rounds:           m.Scenario.Rounds,
		FlagLevel:        flagLevel,
		Quorum:           m.Scenario.Quorum,
		Local:            m.Local,
		PartialBRA:       bra,
		TopVoting:        &voting,
		ClientData:       m.Shards,
		TestData:         m.TestData,
		ValidationShards: m.ValidationShards,
		Byzantine:        m.Byzantine,
		Timing:           timing,
		Seed:             seed,
		EvalEvery:        m.Scenario.EvalEvery,
		Workers:          m.Scenario.Workers,
		Telemetry:        m.Telemetry,
		OnFilter:         m.OnFilter,
		Trace:            m.Trace,
		Codec:            m.Codec,
	}
	// A non-voting top consensus (e.g. the randomized "aba") carries over to
	// the pipeline's top actor; plain voting keeps the historical TopVoting
	// wiring so existing runs stay byte-identical.
	if cba := m.GlobalRule.CBA; cba != nil {
		if _, isVoting := cba.(consensus.Voting); !isVoting {
			cfg.TopCBA = cba
		}
	}
	return cfg, nil
}

// RunPipeline executes the asynchronous pipeline workflow with the given
// flag level, using the scenario's intermediate BRA rule and a voting top.
func (m *Materials) RunPipeline(seed uint64, flagLevel int, timing pipeline.Timing) (*pipeline.Result, error) {
	cfg, err := m.PipelineConfig(seed, flagLevel, timing)
	if err != nil {
		return nil, err
	}
	return pipeline.Run(cfg)
}

// Run is the one-call convenience API: build the scenario and run the
// ABD-HFL round engine once.
func Run(s Scenario) (*core.Result, error) {
	m, err := Build(s)
	if err != nil {
		return nil, err
	}
	return m.RunHFL(s.WithDefaults().Seed)
}

// RunBaseline is the one-call vanilla-FL counterpart of Run.
func RunBaseline(s Scenario) (*core.Result, error) {
	m, err := Build(s)
	if err != nil {
		return nil, err
	}
	return m.RunVanilla(s.WithDefaults().Seed)
}
