package abdhfl

import (
	"abdhfl/internal/core"
	"abdhfl/internal/metrics"
	"abdhfl/internal/topology"
)

// Repeats runs fn for seeds 1..n and aggregates the accuracy curves into a
// mean ± 95% CI series (the paper reports the average of five repeated
// runs). fn receives the engine seed of the repeat.
func Repeats(name string, n int, fn func(seed uint64) (*core.Result, error)) (metrics.Series, error) {
	curves := make([]metrics.Curve, 0, n)
	for i := 0; i < n; i++ {
		res, err := fn(uint64(i + 1))
		if err != nil {
			return metrics.Series{}, err
		}
		var c metrics.Curve
		for _, p := range res.Curve {
			c.Rounds = append(c.Rounds, p.Round)
			c.Values = append(c.Values, p.Accuracy)
		}
		curves = append(curves, c)
	}
	return metrics.Aggregate(name, curves), nil
}

// TheoreticalBound returns the Theorem 2 maximum tolerated Byzantine
// proportion at the scenario's bottom level with γ1 = γ2 = 25% — the
// paper's §V-A setting (57.8125% for the default 3-level tree).
func TheoreticalBound(s Scenario) float64 {
	s = s.WithDefaults()
	tol := topology.Tolerance{Gamma1: 0.25, Gamma2: 0.25}
	return tol.BottomBound(s.Levels)
}

// PaperScenario returns the evaluation configuration of the paper's
// Appendix D (Table VII): 3 levels, cluster size 4, 4 top nodes, 64 clients,
// 200 global rounds, 5 local iterations, MultiKrum partial aggregation and
// validation-voting global consensus. The per-client sample count is scaled
// down from MNIST's 937 (see DESIGN.md substitutions).
func PaperScenario() Scenario {
	return Scenario{}.WithDefaults()
}

// QuickScenario is a reduced configuration for smoke tests and examples:
// the same topology with fewer rounds and samples.
func QuickScenario() Scenario {
	return Scenario{
		Rounds:            30,
		SamplesPerClient:  100,
		TestSamples:       600,
		ValidationSamples: 400,
		EvalEvery:         5,
	}.WithDefaults()
}
