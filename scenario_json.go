package abdhfl

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// scenarioJSON mirrors Scenario with explicit JSON tags so experiment
// configurations can be checked into files and replayed exactly.
type scenarioJSON struct {
	Topology       string  `json:"topology,omitempty"`
	Levels         int     `json:"levels,omitempty"`
	ClusterSize    int     `json:"cluster_size,omitempty"`
	TopNodes       int     `json:"top_nodes,omitempty"`
	ACSMDevices    int     `json:"acsm_devices,omitempty"`
	ACSMMinCluster int     `json:"acsm_min_cluster,omitempty"`
	ACSMMaxCluster int     `json:"acsm_max_cluster,omitempty"`
	Distribution   string  `json:"distribution,omitempty"`
	DirichletAlpha float64 `json:"dirichlet_alpha,omitempty"`
	Attack         string  `json:"attack,omitempty"`
	Malicious      float64 `json:"malicious_fraction,omitempty"`
	Placement      string  `json:"placement,omitempty"`
	Rounds         int     `json:"rounds,omitempty"`
	LocalIters     int     `json:"local_iters,omitempty"`
	BatchSize      int     `json:"batch_size,omitempty"`
	LearningRate   float64 `json:"learning_rate,omitempty"`
	Samples        int     `json:"samples_per_client,omitempty"`
	TestSamples    int     `json:"test_samples,omitempty"`
	ValSamples     int     `json:"validation_samples,omitempty"`
	Aggregator     string  `json:"aggregator,omitempty"`
	TopProtocol    string  `json:"top_protocol,omitempty"`
	Scheme         int     `json:"scheme,omitempty"`
	Quorum         float64 `json:"quorum,omitempty"`
	Codec          string  `json:"codec,omitempty"`
	EvalEvery      int     `json:"eval_every,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Workers        int     `json:"workers,omitempty"`
}

func (j scenarioJSON) scenario() Scenario {
	return Scenario{
		Topology:          Topology(j.Topology),
		Levels:            j.Levels,
		ClusterSize:       j.ClusterSize,
		TopNodes:          j.TopNodes,
		ACSMDevices:       j.ACSMDevices,
		ACSMMinCluster:    j.ACSMMinCluster,
		ACSMMaxCluster:    j.ACSMMaxCluster,
		Distribution:      Distribution(j.Distribution),
		DirichletAlpha:    j.DirichletAlpha,
		Attack:            Attack(j.Attack),
		MaliciousFraction: j.Malicious,
		Placement:         Placement(j.Placement),
		Rounds:            j.Rounds,
		LocalIters:        j.LocalIters,
		BatchSize:         j.BatchSize,
		LearningRate:      j.LearningRate,
		SamplesPerClient:  j.Samples,
		TestSamples:       j.TestSamples,
		ValidationSamples: j.ValSamples,
		Aggregator:        j.Aggregator,
		TopProtocol:       j.TopProtocol,
		Scheme:            j.Scheme,
		Quorum:            j.Quorum,
		Codec:             j.Codec,
		EvalEvery:         j.EvalEvery,
		Seed:              j.Seed,
		Workers:           j.Workers,
	}
}

func (s Scenario) jsonView() scenarioJSON {
	return scenarioJSON{
		Topology:       string(s.Topology),
		Levels:         s.Levels,
		ClusterSize:    s.ClusterSize,
		TopNodes:       s.TopNodes,
		ACSMDevices:    s.ACSMDevices,
		ACSMMinCluster: s.ACSMMinCluster,
		ACSMMaxCluster: s.ACSMMaxCluster,
		Distribution:   string(s.Distribution),
		DirichletAlpha: s.DirichletAlpha,
		Attack:         string(s.Attack),
		Malicious:      s.MaliciousFraction,
		Placement:      string(s.Placement),
		Rounds:         s.Rounds,
		LocalIters:     s.LocalIters,
		BatchSize:      s.BatchSize,
		LearningRate:   s.LearningRate,
		Samples:        s.SamplesPerClient,
		TestSamples:    s.TestSamples,
		ValSamples:     s.ValidationSamples,
		Aggregator:     s.Aggregator,
		TopProtocol:    s.TopProtocol,
		Scheme:         s.Scheme,
		Quorum:         s.Quorum,
		Codec:          s.Codec,
		EvalEvery:      s.EvalEvery,
		Seed:           s.Seed,
		Workers:        s.Workers,
	}
}

// ReadScenario decodes a JSON scenario description. Unknown fields are
// rejected so typos in config files surface immediately; defaults are NOT
// applied (call WithDefaults, or let Build do it).
func ReadScenario(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j scenarioJSON
	if err := dec.Decode(&j); err != nil {
		return Scenario{}, fmt.Errorf("abdhfl: decoding scenario: %w", err)
	}
	return j.scenario(), nil
}

// LoadScenario reads a JSON scenario file.
func LoadScenario(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	return ReadScenario(f)
}

// WriteScenario encodes the scenario as indented JSON.
func WriteScenario(w io.Writer, s Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.jsonView())
}
