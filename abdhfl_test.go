package abdhfl

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abdhfl/internal/core"
	"abdhfl/internal/pipeline"
)

func quick(overrides func(*Scenario)) Scenario {
	s := Scenario{
		Levels: 3, ClusterSize: 2, TopNodes: 2,
		Rounds: 8, SamplesPerClient: 60, TestSamples: 300,
		ValidationSamples: 200, EvalEvery: 8,
	}
	if overrides != nil {
		overrides(&s)
	}
	return s.WithDefaults()
}

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{}.WithDefaults()
	if s.Levels != 3 || s.ClusterSize != 4 || s.TopNodes != 4 {
		t.Fatalf("topology defaults wrong: %+v", s)
	}
	if s.Rounds != 200 || s.LocalIters != 5 {
		t.Fatalf("learning defaults wrong: %+v", s)
	}
	if s.Aggregator != "multi-krum" || s.TopProtocol != "voting" {
		t.Fatalf("rule defaults wrong: %+v", s)
	}
	if s.Clients() != 64 {
		t.Fatalf("clients = %d, want 64", s.Clients())
	}
}

func TestClientsFormula(t *testing.T) {
	s := Scenario{Levels: 4, ClusterSize: 3, TopNodes: 5}.WithDefaults()
	if s.Clients() != 5*3*3*3 {
		t.Fatalf("clients = %d", s.Clients())
	}
}

func TestBuildMaterials(t *testing.T) {
	m, err := Build(quick(nil))
	if err != nil {
		t.Fatal(err)
	}
	if m.Tree.NumDevices() != 8 {
		t.Fatalf("devices = %d", m.Tree.NumDevices())
	}
	if len(m.Shards) != 8 {
		t.Fatalf("shards = %d", len(m.Shards))
	}
	if len(m.ValidationShards) != 2 {
		t.Fatalf("validation shards = %d", len(m.ValidationShards))
	}
}

func TestBuildPoisonsPrefix(t *testing.T) {
	m, err := Build(quick(func(s *Scenario) {
		s.Attack = AttackType1
		s.MaliciousFraction = 0.25
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Byzantine) != 2 {
		t.Fatalf("byzantine count = %d, want 2", len(m.Byzantine))
	}
	if !m.Byzantine[0] || !m.Byzantine[1] {
		t.Fatalf("prefix placement wrong: %v", m.Byzantine)
	}
	// Client 0's labels are all 9; client 7's are untouched.
	for _, y := range m.Shards[0].Y {
		if y != 9 {
			t.Fatal("client 0 not poisoned")
		}
	}
	h := m.Shards[7].LabelHistogram()
	nonNine := 0
	for l, n := range h {
		if l != 9 {
			nonNine += n
		}
	}
	if nonNine == 0 {
		t.Fatal("honest client looks poisoned")
	}
}

func TestBuildModelAttack(t *testing.T) {
	m, err := Build(quick(func(s *Scenario) {
		s.Attack = AttackSignFlip
		s.MaliciousFraction = 0.25
	}))
	if err != nil {
		t.Fatal(err)
	}
	if m.ModelAttack == nil {
		t.Fatal("model attack not wired")
	}
	// Data must be untouched for model attacks.
	for _, y := range m.Shards[0].Y {
		if y == 9 {
			return // label 9 can legitimately occur; just ensure mix exists
		}
	}
}

func TestBuildRejectsBadScenario(t *testing.T) {
	if _, err := Build(quick(func(s *Scenario) { s.Distribution = "bogus" })); err == nil {
		t.Fatal("bogus distribution accepted")
	}
	if _, err := Build(quick(func(s *Scenario) { s.Attack = "bogus" })); err == nil {
		t.Fatal("bogus attack accepted")
	}
	if _, err := Build(quick(func(s *Scenario) { s.Aggregator = "bogus" })); err == nil {
		t.Fatal("bogus aggregator accepted")
	}
	if _, err := Build(quick(func(s *Scenario) { s.TopProtocol = "bogus" })); err == nil {
		t.Fatal("bogus protocol accepted")
	}
	if _, err := Build(quick(func(s *Scenario) { s.MaliciousFraction = 1.5 })); err == nil {
		t.Fatal("bad fraction accepted")
	}
	if _, err := Build(quick(func(s *Scenario) { s.Placement = "bogus"; s.MaliciousFraction = 0.1 })); err == nil {
		t.Fatal("bogus placement accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(quick(func(s *Scenario) { s.Rounds = 10 }))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy <= 0.2 {
		t.Fatalf("accuracy = %v", res.FinalAccuracy)
	}
}

func TestRunBaselineEndToEnd(t *testing.T) {
	res, err := RunBaseline(quick(func(s *Scenario) { s.Rounds = 10 }))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy <= 0.2 {
		t.Fatalf("baseline accuracy = %v", res.FinalAccuracy)
	}
}

func TestNonIIDScenarioRuns(t *testing.T) {
	s := quick(func(s *Scenario) {
		s.Distribution = DistNonIID
		s.Aggregator = "median"
		s.Rounds = 6
	})
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletScenarioRuns(t *testing.T) {
	s := quick(func(s *Scenario) {
		s.Distribution = DistDirichlet
		s.Rounds = 4
	})
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
}

func TestAllSchemesRun(t *testing.T) {
	for scheme := 1; scheme <= 4; scheme++ {
		s := quick(func(s *Scenario) {
			s.Scheme = scheme
			s.Rounds = 3
		})
		if _, err := Run(s); err != nil {
			t.Fatalf("scheme %d: %v", scheme, err)
		}
	}
}

func TestAllAttacksBuild(t *testing.T) {
	for _, a := range []Attack{AttackNone, AttackType1, AttackType2, AttackBackdoor, AttackSignFlip, AttackNoise, AttackALE, AttackIPM} {
		m, err := Build(quick(func(s *Scenario) {
			s.Attack = a
			s.MaliciousFraction = 0.25
		}))
		if err != nil {
			t.Fatalf("attack %s: %v", a, err)
		}
		if m == nil {
			t.Fatalf("attack %s: nil materials", a)
		}
	}
}

func TestPlacements(t *testing.T) {
	for _, p := range []Placement{PlacePrefix, PlaceRandom, PlaceAdversarial} {
		m, err := Build(quick(func(s *Scenario) {
			s.Placement = p
			s.Attack = AttackType1
			s.MaliciousFraction = 0.25
		}))
		if err != nil {
			t.Fatalf("placement %s: %v", p, err)
		}
		if len(m.Byzantine) != 2 {
			t.Fatalf("placement %s marked %d devices, want 2", p, len(m.Byzantine))
		}
	}
}

func TestRepeatsAggregates(t *testing.T) {
	m, err := Build(quick(func(s *Scenario) { s.Rounds = 4; s.EvalEvery = 2 }))
	if err != nil {
		t.Fatal(err)
	}
	series, err := Repeats("x", 3, func(seed uint64) (*core.Result, error) {
		return m.RunHFL(seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(series.Points))
	}
	if series.Points[0].Count != 3 {
		t.Fatalf("count = %d, want 3", series.Points[0].Count)
	}
}

func TestTheoreticalBound(t *testing.T) {
	if b := TheoreticalBound(Scenario{}); math.Abs(b-0.578125) > 1e-12 {
		t.Fatalf("bound = %v, want 0.578125", b)
	}
	if b := TheoreticalBound(Scenario{Levels: 2}); math.Abs(b-0.4375) > 1e-12 {
		t.Fatalf("2-level bound = %v, want 0.4375", b)
	}
}

func TestRunPipelineFromMaterials(t *testing.T) {
	m, err := Build(quick(func(s *Scenario) { s.Rounds = 5 }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunPipeline(1, 1, pipeline.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Fatal("pipeline did not run")
	}
}

func TestPresets(t *testing.T) {
	p := PaperScenario()
	if p.Rounds != 200 || p.Clients() != 64 {
		t.Fatalf("paper preset wrong: %+v", p)
	}
	q := QuickScenario()
	if q.Rounds != 30 || q.Clients() != 64 {
		t.Fatalf("quick preset wrong: %+v", q)
	}
}

func TestACSMScenarioEndToEnd(t *testing.T) {
	s := Scenario{
		Topology:          TopologyACSM,
		ACSMDevices:       30,
		TopNodes:          4,
		Attack:            AttackType1,
		MaliciousFraction: 0.2,
		Rounds:            6,
		SamplesPerClient:  60,
		TestSamples:       300,
		ValidationSamples: 200,
		EvalEvery:         6,
	}.WithDefaults()
	if s.Clients() != 30 {
		t.Fatalf("ACSM clients = %d", s.Clients())
	}
	m, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tree.NumDevices() != 30 {
		t.Fatalf("ACSM tree devices = %d", m.Tree.NumDevices())
	}
	res, err := m.RunHFL(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy <= 0.15 {
		t.Fatalf("ACSM accuracy = %v", res.FinalAccuracy)
	}
}

func TestUnknownTopologyRejected(t *testing.T) {
	if _, err := Build(quick(func(s *Scenario) { s.Topology = "mesh" })); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := Scenario{
		Attack:            AttackType1,
		MaliciousFraction: 0.3,
		Rounds:            42,
		Aggregator:        "median",
		Codec:             "delta-topk",
		Seed:              7,
	}
	var buf bytes.Buffer
	if err := WriteScenario(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip changed scenario:\n got %+v\nwant %+v", got, s)
	}
}

func TestReadScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ReadScenario(strings.NewReader(`{"roundz": 10}`)); err == nil {
		t.Fatal("typo field accepted")
	}
	if _, err := ReadScenario(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(`{"rounds": 5, "attack": "type2", "malicious_fraction": 0.25}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds != 5 || s.Attack != AttackType2 || s.MaliciousFraction != 0.25 {
		t.Fatalf("loaded %+v", s)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadedScenarioBuildsAndRuns(t *testing.T) {
	s, err := ReadScenario(strings.NewReader(`{
		"levels": 3, "cluster_size": 2, "top_nodes": 2,
		"rounds": 3, "samples_per_client": 40,
		"test_samples": 200, "validation_samples": 150, "eval_every": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
}
