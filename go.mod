module abdhfl

go 1.22
